//! The async-first serving front door.
//!
//! [`TuneService`] is the poll/notify redesign of the blocking
//! [`crate::TunerRouter`] API: [`TuneService::submit`] returns a
//! [`TuneTicket`] *immediately* -- cache hits and shard refusals come
//! back pre-resolved, misses enqueue a job on the worker pool and
//! resolve through the waker-driven single-flight table -- so one OS
//! thread can keep hundreds of heterogeneous shape queries in flight
//! while the pool grinds through the cold tunes.
//!
//! ```text
//!  submit/submit_batch ──► fast path (shard map + TuneCache) ──► Ready ticket
//!           │ miss
//!           ▼
//!  SingleFlight::claim ── Led ──► MissQueue ──► WorkerPool ──► tune_*_cold
//!           │ Joined                                   │
//!           ▼                                          ▼
//!   ticket waits (waker) ◄────── complete() fans out ──┘
//! ```
//!
//! Shard lifecycle is part of the same design: [`TuneService::add_shard`],
//! [`TuneService::remove_shard`] and [`TuneService::replace_shard`] may
//! run at any time, and a removed/replaced shard **fails its pending
//! tickets** (decision `Served::Failed`) instead of stranding them --
//! completion semantics and shard semantics are one contract. Whole-fleet
//! persistence rides on the same lifecycle: [`TuneService::snapshot_all`]
//! writes every shard's decision cache as a device-tagged v2 cache file
//! and [`TuneService::restore_all`] reloads them into a freshly built
//! service, so a restart serves its old working set from cache instead of
//! re-tuning it.
//!
//! Since PR 5 the fleet is **self-maintaining** across that lifecycle:
//!
//! * [`TuneService::enable_snapshots`] runs an interval snapshotter on
//!   the existing worker pool -- dirty shards are persisted in the
//!   queue's idle gaps and once more on shutdown, so a crash loses at
//!   most one interval of tuning work (progress in
//!   [`RouterStats::snapshots`] and [`TuneService::last_snapshot`]);
//! * [`TuneService::submit_with`] bakes a **deadline** into the ticket:
//!   a bounded waiter resolves to [`Served::TimedOut`] without
//!   poisoning the flight for its other waiters;
//! * a flight whose tickets are **all dropped** before its job starts
//!   is cancelled through the `(key, FlightId)` path and its queued
//!   job is discarded -- nobody tunes for an audience of zero;
//! * each shard's decision cache evicts by
//!   [`isaac_core::EvictionPolicy::CostAware`] (hot or
//!   expensive-to-re-tune entries outlive cold, cheap ones under
//!   capacity pressure; plain LRU remains available as the reference
//!   policy).
//!
//! PR 7 adds the **SLO leg** of the front door:
//!
//! * per-tenant **admission quotas**
//!   ([`TuneService::set_admission_quota`], [`SubmitOptions::tenant`]):
//!   a tenant over its in-flight miss bound gets [`Served::Rejected`]
//!   immediately instead of piling onto the tuning backend -- the key's
//!   single-flight is untouched, so within-quota waiters still share
//!   the tune;
//! * **deadline-driven shedding**: a queued job whose live waiters have
//!   all passed their deadlines is demoted to a strictly lower-priority
//!   background lane ([`ServiceStats::shed`]) -- it still runs and
//!   warms the cache, but never ahead of a job someone is waiting on;
//! * **predictive warm-starts** ([`TuneService::prewarm_hot`]):
//!   trending-hot decisions are re-benched into neighbour shards on the
//!   same background lane, so the next tenant to migrate a hot shape
//!   across devices hits cache instead of a cold tune.
//!
//! PR 8 makes the front door **self-healing** (see `docs/RESILIENCE.md`):
//!
//! * every cold-tune outcome feeds a per-shard **circuit breaker**
//!   (`Closed -> Open -> HalfOpen`, [`TuneService::breaker_state`]);
//!   while a breaker is open, new misses on that shard serve the
//!   model-free heuristic ([`Served::Degraded`]) instead of queueing
//!   behind a broken tuner, and a half-open probe decides when to
//!   re-close;
//! * a flight that exhausts its [`RetryPolicy`] **quarantines its key**
//!   ([`TuneService::is_quarantined`]): subsequent submits answer
//!   `Degraded` instantly from a memoized heuristic while a background
//!   **repair job** re-probes the key on an exponential backoff and
//!   upgrades the cache entry once a tune finally lands
//!   ([`RouterStats::repair_upgrades`]). Degraded decisions are never
//!   cached or journaled as authoritative;
//! * fault injection for all of it goes through the [`crate::TuneFault`]
//!   seam ([`TuneService::set_tune_fault`]) -- panic, error, slow-tune
//!   and wrong-device faults, scripted deterministically by
//!   [`crate::FaultTuner`] and driven by the seeded `tests/chaos_serve.rs`
//!   suite.

use crate::admission::{Admission, TenantSlot, TenantStats};
use crate::batch::{plan, Decision, Query, QueryShape, Served};
use crate::durability::{compact_shard, gc_orphans, recover_shard, wal_file_name};
use crate::fault::{FaultKind, TuneFault};
use crate::health::{
    BreakerConfig, BreakerEvent, BreakerState, DegradedLedger, Gate, QuarantineConfig, ShardHealth,
};
use crate::single_flight::{FlightStats, Role, SingleFlight, Waiter};
use crate::stats::{bump, Counters, RouterStats, ServiceStats};
use crate::ticket::{OpenTickets, TicketCell, TuneTicket};
use crate::workers::{BgJob, Job, MissQueue, Popped, WorkerPool};
use isaac_core::durability::{DurabilityIo, StdIo, WalWriter};
use isaac_core::{IsaacTuner, OpKind, TuneKey, TunedChoice, WarmStartReport};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// What a flight hands its waiters.
#[derive(Debug, Clone)]
enum FlightOutcome {
    /// The leader ran the cold tune (`None` == no legal configuration).
    Cold(Option<TunedChoice>),
    /// The leader's re-peek found the key already published by an
    /// earlier flight: an authoritative decision, but nobody tuned.
    Rehit(TunedChoice),
    /// The tuned path is unhealthy; this is the model-free heuristic
    /// stand-in (`None` == not even the heuristic found a legal
    /// configuration). Never published to the cache.
    Degraded(Option<TunedChoice>),
}

/// Default total attempts for a panicking tune (the first attempt plus
/// two retries); see [`RetryPolicy`].
const MAX_TUNE_ATTEMPTS: u32 = 3;

/// How the worker pool retries a cold tune whose attempt panicked
/// ([`TuneService::set_retry_policy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per flight, the first one included (clamped to at
    /// least 1). Past the budget the key is quarantined, the flight
    /// resolves [`Served::Degraded`], and the exhaustion counts into
    /// [`ServiceStats::retry_exhausted`].
    pub max_attempts: u32,
    /// Pause before each re-queued retry, on the worker that caught the
    /// panic. Zero (the default) re-queues immediately; a non-zero
    /// backoff gives a transiently sick device room to recover instead
    /// of burning the whole attempt budget in microseconds.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: MAX_TUNE_ATTEMPTS,
            backoff: Duration::ZERO,
        }
    }
}

/// The tuners of one device, keyed by operation. Op-agnostic on
/// purpose: a new op family registered in `isaac-core` gets a slot here
/// without the serving layer changing.
#[derive(Debug, Default)]
struct Shard {
    tuners: BTreeMap<OpKind, Arc<IsaacTuner>>,
}

impl Shard {
    fn tuner(&self, op: OpKind) -> Option<&Arc<IsaacTuner>> {
        self.tuners.get(&op)
    }

    fn is_empty(&self) -> bool {
        self.tuners.is_empty()
    }
}

/// Per-query submission options for [`TuneService::submit_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Latency bound baked into the returned ticket: consuming the
    /// ticket past this duration (measured from submission) yields
    /// [`Served::TimedOut`] instead of blocking longer. `None` (the
    /// default) waits unboundedly. The bound is ticket-local -- the
    /// underlying flight keeps running for other waiters and still
    /// publishes its decision to the cache.
    pub deadline: Option<Duration>,
    /// The submitting tenant, for per-tenant admission quotas
    /// ([`TuneService::set_admission_quota`]). Tenant `0` (the default)
    /// is a tenant like any other. Quotas bound *misses in flight*:
    /// cache hits and shard refusals are served before admission and
    /// never rejected.
    pub tenant: u16,
}

/// Schedule of the background snapshotter (see
/// [`TuneService::enable_snapshots`]).
#[derive(Debug)]
struct SnapshotSchedule {
    dir: PathBuf,
    interval: Duration,
    next_due: Instant,
    last: Option<SnapshotReport>,
    /// `true`: the interval work is WAL compaction
    /// ([`TuneService::enable_durability`]); `false`: the PR 5
    /// whole-file dirty-shard snapshot.
    wal: bool,
}

/// Live write-ahead durability state
/// ([`TuneService::enable_durability`]): the directory, the I/O layer
/// every durability operation routes through, and one journal writer
/// per registered `(device, op)` shard.
struct WalState {
    dir: PathBuf,
    io: Arc<dyn DurabilityIo>,
    writers: HashMap<(u16, OpKind), Arc<WalWriter>>,
}

/// Aggregate outcome of [`TuneService::snapshot_all`] /
/// [`TuneService::restore_all`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Cache files written (snapshot/compaction) or read
    /// (restore/recovery).
    pub files: usize,
    /// Decisions persisted (snapshot) or merged from base files
    /// (restore/recovery).
    pub entries: usize,
    /// Malformed / wrong-operation lines or records skipped during
    /// restore/recovery -- silent cache shrinkage made visible.
    pub skipped: usize,
    /// Files whose `(device, op)` has no registered shard to restore
    /// into (restore/recovery only).
    pub unmatched: usize,
    /// WAL records replayed on top of base files (recovery only).
    pub replayed: usize,
    /// Torn or corrupt trailing WAL records truncated away instead of
    /// being replayed (recovery only).
    pub torn_records: usize,
    /// Stale persistence files deleted: orphans of unregistered shards
    /// and `.tmp` leftovers of crashed compactions (compaction sweeps),
    /// or the files of a removed/replaced shard.
    pub gc_removed: usize,
}

/// Gauges owned by the service core (the open-ticket gauge lives in
/// [`OpenTickets`] so ticket cells can carry it).
#[derive(Debug, Default)]
struct Gauges {
    jobs_run: AtomicU64,
    jobs_cancelled: AtomicU64,
    tune_retries: AtomicU64,
    retry_exhausted: AtomicU64,
    queue_wait_ns: AtomicU64,
    shed: AtomicU64,
    prewarmed: AtomicU64,
    prewarm_jobs: AtomicU64,
    repair_jobs: AtomicU64,
}

/// Shared state behind the service front door; workers hold an `Arc` of
/// this, so the core outlives any user-facing [`TuneService`] handle
/// until the pool has drained.
struct ServiceCore {
    shards: RwLock<BTreeMap<u16, Shard>>,
    flights: SingleFlight<TuneKey, FlightOutcome>,
    counters: Counters,
    queue: MissQueue,
    gauges: Gauges,
    tickets: Arc<OpenTickets>,
    /// Per-tenant admission quotas; see [`crate::TenantStats`].
    admission: Admission,
    /// Background snapshotter schedule; `None` until
    /// [`TuneService::enable_snapshots`] /
    /// [`TuneService::enable_durability`].
    snapshots: Mutex<Option<SnapshotSchedule>>,
    /// Write-ahead durability state; `None` until
    /// [`TuneService::enable_durability`].
    wal: Mutex<Option<WalState>>,
    /// Report of the most recent [`TuneService::recover_all`], so
    /// recovery corruption counts stay inspectable
    /// ([`TuneService::last_snapshot`] falls back to it).
    last_recovery: Mutex<Option<SnapshotReport>>,
    /// How panicking tunes are retried; see [`RetryPolicy`].
    retry: RwLock<RetryPolicy>,
    /// The tuning-path fault seam ([`TuneService::set_tune_fault`]):
    /// consulted before every cold-tune attempt, `None` in production.
    fault: RwLock<Option<Arc<dyn TuneFault>>>,
    /// Per-`(device, op)` circuit breakers, created on first outcome or
    /// gate check; reset when the shard leaves the fleet.
    health: RwLock<HashMap<(u16, OpKind), Arc<ShardHealth>>>,
    /// Breaker tuning knobs ([`TuneService::set_breaker_config`]).
    breaker_cfg: RwLock<BreakerConfig>,
    /// Quarantine backoff knobs
    /// ([`TuneService::set_quarantine_config`]).
    quarantine_cfg: RwLock<QuarantineConfig>,
    /// Poison-key quarantine + degraded-key memoization/repair ledger.
    ledger: DegradedLedger,
}

impl std::fmt::Debug for ServiceCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceCore")
            .field("devices", &self.device_ids())
            .field("flights", &self.flights)
            .field("queue_depth", &self.queue.depth())
            .finish()
    }
}

/// Outcome of the lock-free-ish fast path: either the query is fully
/// served, or we have the shard tuner in hand for the miss path.
enum FastPath {
    Done(Decision),
    Miss(Arc<IsaacTuner>),
}

impl ServiceCore {
    fn device_ids(&self) -> Vec<u16> {
        self.shards
            .read()
            .expect("shard map poisoned")
            .keys()
            .copied()
            .collect()
    }

    fn shard_tuner(&self, device: u16, op: OpKind) -> Option<Arc<IsaacTuner>> {
        self.shards
            .read()
            .expect("shard map poisoned")
            .get(&device)?
            .tuner(op)
            .cloned()
    }

    /// Serve a query from the shard map and cache alone, counting the
    /// outcome; a `Miss` needs the flight/queue path.
    fn fast_path(&self, query: &Query, key: &TuneKey) -> FastPath {
        let Some(tuner) = self.shard_tuner(query.device, query.op()) else {
            bump(&self.counters.no_shard, 1);
            return FastPath::Done(Decision {
                choice: None,
                served: Served::NoShard,
            });
        };
        match tuner.cache().get(key) {
            Some(hit) => {
                bump(&self.counters.cache_hits, 1);
                FastPath::Done(Decision {
                    choice: Some(hit),
                    served: Served::Cache,
                })
            }
            None => FastPath::Miss(tuner),
        }
    }

    // ---- self-healing ---------------------------------------------------

    /// The `(device, op)` shard's health tracker, created on first use
    /// (a fresh tracker is `Closed`).
    fn shard_health(&self, device: u16, op: OpKind) -> Arc<ShardHealth> {
        if let Some(health) = self
            .health
            .read()
            .expect("health map poisoned")
            .get(&(device, op))
        {
            return Arc::clone(health);
        }
        let mut map = self.health.write().expect("health map poisoned");
        Arc::clone(
            map.entry((device, op))
                .or_insert_with(|| Arc::new(ShardHealth::new(Instant::now()))),
        )
    }

    /// Feed one cold-tune outcome into the shard's breaker, counting
    /// any state transition.
    fn record_tune_outcome(&self, device: u16, op: OpKind, healthy: bool) {
        let cfg = *self.breaker_cfg.read().expect("breaker config poisoned");
        match self
            .shard_health(device, op)
            .on_outcome(&cfg, healthy, Instant::now())
        {
            Some(BreakerEvent::Opened) => bump(&self.counters.breaker_opens, 1),
            Some(BreakerEvent::Closed) => bump(&self.counters.breaker_closes, 1),
            None => {}
        }
    }

    /// Was a successful tune that took `elapsed` healthy under the
    /// breaker's latency SLO (if one is set)?
    fn within_slo(&self, elapsed: Duration) -> bool {
        self.breaker_cfg
            .read()
            .expect("breaker config poisoned")
            .latency_slo
            .is_none_or(|slo| elapsed <= slo)
    }

    /// The model-free heuristic stand-in for one shape.
    fn heuristic_for(tuner: &IsaacTuner, shape: &QueryShape) -> Option<TunedChoice> {
        tuner.heuristic_shape(shape)
    }

    /// Schedule a background repair for a ledgered key, unless one is
    /// already pending.
    fn ensure_repair(
        &self,
        key: &TuneKey,
        tuner: &Arc<IsaacTuner>,
        shape: &QueryShape,
        not_before: Instant,
    ) {
        if self.ledger.claim_repair(key) {
            self.queue.push_background(BgJob::Repair {
                key: *key,
                tuner: Arc::clone(tuner),
                shape: *shape,
                not_before,
            });
        }
    }

    /// Degrade a miss instead of queueing it, when the self-healing
    /// layer says the tuned path is not worth trying: the key is
    /// quarantined (instant answer, no retry burn), or the shard's
    /// breaker is open. `None` lets the miss proceed to the flight
    /// path (including the one half-open probe per open breaker).
    fn try_degrade(
        &self,
        key: &TuneKey,
        tuner: &Arc<IsaacTuner>,
        shape: &QueryShape,
    ) -> Option<Decision> {
        if self.ledger.is_poisoned(key) {
            let choice = self
                .ledger
                .degraded_choice(key, || Self::heuristic_for(tuner, shape));
            // The poisoning flight scheduled the repair; re-arm it here
            // only if that claim was lost (e.g. dropped at shutdown).
            let ttl = self
                .quarantine_cfg
                .read()
                .expect("quarantine config poisoned")
                .ttl;
            self.ensure_repair(key, tuner, shape, Instant::now() + ttl);
            bump(&self.counters.degraded, 1);
            return Some(Decision {
                choice,
                served: Served::Degraded,
            });
        }
        let cfg = *self.breaker_cfg.read().expect("breaker config poisoned");
        match self
            .shard_health(key.device, key.op)
            .gate(&cfg, Instant::now())
        {
            Gate::Pass { .. } => None,
            Gate::Degrade { retry_at } => {
                self.ledger.note_degraded(*key);
                let choice = self
                    .ledger
                    .degraded_choice(key, || Self::heuristic_for(tuner, shape));
                self.ensure_repair(key, tuner, shape, retry_at);
                bump(&self.counters.degraded, 1);
                Some(Decision {
                    choice,
                    served: Served::Degraded,
                })
            }
        }
    }

    /// Build the flight waiter that resolves `cell` once the flight
    /// lands. The role decides how the decision reads: the leader owns
    /// the tune (`Tuned`, or `Cache` when the leader-side re-peek found
    /// the key already published), joiners coalesced. A failed flight
    /// (`None` outcome) counts itself *before* resolving the cell, so a
    /// caller woken by the failure observes it in the stats.
    fn ticket_waiter(
        self: &Arc<Self>,
        cell: Arc<TicketCell>,
    ) -> impl FnOnce(Role) -> Waiter<FlightOutcome> {
        let core = Arc::clone(self);
        move |role| {
            Box::new(move |outcome: Option<FlightOutcome>| {
                let decision = match outcome {
                    Some(FlightOutcome::Cold(choice)) => Decision {
                        choice,
                        served: match role {
                            Role::Led => Served::Tuned,
                            Role::Joined => Served::Coalesced,
                        },
                    },
                    Some(FlightOutcome::Rehit(choice)) => Decision {
                        choice: Some(choice),
                        served: match role {
                            Role::Led => Served::Cache,
                            Role::Joined => Served::Coalesced,
                        },
                    },
                    // Retry exhaustion degrades every waiter, leader
                    // and joiners alike: all of them get the heuristic
                    // stand-in, honestly labelled.
                    Some(FlightOutcome::Degraded(choice)) => {
                        bump(&core.counters.degraded, 1);
                        Decision {
                            choice,
                            served: Served::Degraded,
                        }
                    }
                    None => {
                        bump(&core.counters.failed, 1);
                        Decision {
                            choice: None,
                            served: Served::Failed,
                        }
                    }
                };
                cell.resolve(decision);
            })
        }
    }

    /// Register a miss on the single-flight table. Returns the pending
    /// ticket plus the job to enqueue if this claim opened the flight --
    /// the caller pushes it (possibly after registering more waiters;
    /// nothing can complete the flight before the job is queued).
    /// `count_join` distinguishes genuinely concurrent joiners (counted
    /// as `coalesced`) from in-batch duplicates (already counted as
    /// `batch_deduped`). A `deadline` is baked into the ticket (see
    /// [`SubmitOptions`]); either way the ticket carries an abandon
    /// hook, so a flight all of whose tickets are dropped before its
    /// job starts is cancelled instead of tuning for nobody.
    fn register_miss(
        self: &Arc<Self>,
        tuner: Arc<IsaacTuner>,
        shape: QueryShape,
        key: TuneKey,
        count_join: bool,
        deadline: Option<Instant>,
        tenant: Option<Arc<TenantSlot>>,
    ) -> (TuneTicket, Option<Job>) {
        let cell = Arc::new(TicketCell::new(Arc::clone(&self.tickets), tenant));
        let (role, flight) =
            self.flights
                .claim(key, deadline, self.ticket_waiter(Arc::clone(&cell)));
        let job = match role {
            Role::Led => Some(Job {
                key,
                flight,
                tuner,
                shape,
                enqueued: Instant::now(),
                attempts: 0,
                demoted: false,
            }),
            Role::Joined => {
                if count_join {
                    bump(&self.counters.coalesced, 1);
                }
                None
            }
        };
        let abandon: crate::ticket::AbandonHook = {
            let core = Arc::clone(self);
            let bounded = deadline.is_some();
            Box::new(move || {
                core.flights.abandon(&key, flight, bounded);
            })
        };
        (TuneTicket::pending(cell, deadline, Some(abandon)), job)
    }

    /// Worker loop body: drain the queue until shutdown, running the
    /// background snapshotter in the idle gaps when one is scheduled.
    fn work(self: &Arc<Self>) {
        loop {
            match self.queue.pop_until(|| self.snapshot_deadline()) {
                Popped::Job(job) => self.run_job(*job),
                Popped::Background(bg) => self.run_background(bg),
                Popped::Deadline => self.run_due_snapshot(),
                Popped::Shutdown => return,
            }
        }
    }

    /// The next instant the snapshotter wants a worker to wake, if
    /// scheduled.
    fn snapshot_deadline(&self) -> Option<Instant> {
        self.snapshots
            .lock()
            .expect("snapshot schedule poisoned")
            .as_ref()
            .map(|s| s.next_due)
    }

    /// Run the interval snapshot if it is due. Exactly one worker wins
    /// the race: the schedule's `next_due` is advanced *before* the
    /// (lock-free) disk write, so everyone else sees a future deadline
    /// and goes back to sleep.
    fn run_due_snapshot(self: &Arc<Self>) {
        let (dir, wal_mode) = {
            let mut schedule = self.snapshots.lock().expect("snapshot schedule poisoned");
            match schedule.as_mut() {
                Some(s) if Instant::now() >= s.next_due => {
                    s.next_due = Instant::now() + s.interval;
                    (s.dir.clone(), s.wal)
                }
                _ => return,
            }
        };
        let outcome = if wal_mode {
            self.run_compaction_sweep(&dir)
        } else {
            self.snapshot_shards(&dir, true)
        };
        match outcome {
            // An all-clean fleet writes no files and counts no
            // snapshot: the interval tick is free while nothing tunes.
            Ok(report) if report.files == 0 => {}
            Ok(report) => {
                bump(&self.counters.snapshots, 1);
                bump(&self.counters.snapshot_entries, report.entries as u64);
                let mut schedule = self.snapshots.lock().expect("snapshot schedule poisoned");
                if let Some(s) = schedule.as_mut() {
                    s.last = Some(report);
                }
            }
            Err(_) => bump(&self.counters.snapshot_errors, 1),
        }
    }

    /// Every registered `(device, op, tuner)` triple, snapshotted under
    /// the shard read lock.
    fn shard_list(&self) -> Vec<(u16, OpKind, Arc<IsaacTuner>)> {
        let map = self.shards.read().expect("shard map poisoned");
        map.iter()
            .flat_map(|(&device, shard)| {
                shard
                    .tuners
                    .iter()
                    .map(move |(&op, t)| (device, op, Arc::clone(t)))
            })
            .collect()
    }

    /// Persist shard caches under `dir` (created if missing), one
    /// device-tagged v2 cache file per `(device, op)` shard. With
    /// `only_dirty`, shards whose caches are unchanged since their last
    /// save are skipped -- their file on disk is already current -- so
    /// an idle fleet's snapshot interval costs nothing.
    fn snapshot_shards(&self, dir: &Path, only_dirty: bool) -> std::io::Result<SnapshotReport> {
        std::fs::create_dir_all(dir)?;
        let mut report = SnapshotReport::default();
        for (device, op, tuner) in self.shard_list() {
            if only_dirty && !tuner.cache().is_dirty() {
                continue;
            }
            tuner.save_cache(&dir.join(snapshot_file_name(device, op)))?;
            report.files += 1;
            report.entries += tuner.cache_len();
        }
        Ok(report)
    }

    /// The I/O layer durability routes through, when enabled.
    fn wal_io(&self) -> Option<Arc<dyn DurabilityIo>> {
        self.wal
            .lock()
            .expect("wal state poisoned")
            .as_ref()
            .map(|s| Arc::clone(&s.io))
    }

    /// The shard's WAL writer, created on first use (durability mode
    /// only).
    fn wal_writer(&self, device: u16, op: OpKind) -> Option<Arc<WalWriter>> {
        let mut wal = self.wal.lock().expect("wal state poisoned");
        let state = wal.as_mut()?;
        Some(Arc::clone(
            state.writers.entry((device, op)).or_insert_with(|| {
                Arc::new(WalWriter::new(
                    Arc::clone(&state.io),
                    state.dir.join(wal_file_name(device, op)),
                ))
            }),
        ))
    }

    /// Attach the shard's WAL writer as its cache journal (no-op until
    /// durability is enabled). Every publish and policy eviction from
    /// here on appends one framed record.
    fn attach_journal(&self, device: u16, op: OpKind, tuner: &IsaacTuner) {
        if let Some(writer) = self.wal_writer(device, op) {
            tuner.cache().set_journal(Some(writer));
        }
    }

    /// Durability-mode shard teardown: detach the outgoing tuner's
    /// journal (so a straggling publish cannot recreate the file
    /// mid-delete), drop the writer, and delete the shard's base and
    /// WAL files -- a removed or replaced shard must not leave stale
    /// state for the next recovery to resurrect. Deletions count into
    /// [`RouterStats::gc_removed`].
    fn gc_shard_files(&self, device: u16, op: OpKind, old: Option<&IsaacTuner>) {
        if let Some(old) = old {
            old.cache().set_journal(None);
        }
        let removed = {
            let mut wal = self.wal.lock().expect("wal state poisoned");
            let Some(state) = wal.as_mut() else { return };
            state.writers.remove(&(device, op));
            [snapshot_file_name(device, op), wal_file_name(device, op)]
                .iter()
                .filter(|name| state.io.remove_file(&state.dir.join(name.as_str())).is_ok())
                .count()
        };
        bump(&self.counters.gc_removed, removed as u64);
    }

    /// One durability interval: compact every shard whose state moved
    /// (dirty cache or non-empty WAL) into a fresh base file, then
    /// sweep the directory for orphans of unregistered shards and
    /// `.tmp` leftovers of crashed compactions.
    fn run_compaction_sweep(&self, dir: &Path) -> std::io::Result<SnapshotReport> {
        let Some(io) = self.wal_io() else {
            return Ok(SnapshotReport::default());
        };
        io.create_dir_all(dir)?;
        let mut report = SnapshotReport::default();
        let shards = self.shard_list();
        for (device, op, tuner) in &shards {
            let Some(writer) = self.wal_writer(*device, *op) else {
                continue;
            };
            let wal_len = io
                .file_len(&dir.join(wal_file_name(*device, *op)))
                .unwrap_or(0);
            if !tuner.cache().is_dirty() && wal_len == 0 {
                continue;
            }
            let entries = compact_shard(io.as_ref(), dir, *device, *op, tuner, &writer)?;
            report.files += 1;
            report.entries += entries;
            bump(&self.counters.compactions, 1);
        }
        report.gc_removed = gc_orphans(io.as_ref(), dir, |device, op| {
            shards.iter().any(|(d, o, _)| *d == device && *o == op)
        });
        bump(&self.counters.gc_removed, report.gc_removed as u64);
        Ok(report)
    }

    /// Execute one queued job: re-peek the cache under flight
    /// leadership, cold-tune on a genuine miss, fan the result out to
    /// every ticket. A panicking (or injected-fault) tune is caught
    /// (the worker survives), counted, and retried up to
    /// [`MAX_TUNE_ATTEMPTS`]; past that the key is quarantined and the
    /// flight resolves [`Served::Degraded`] with the heuristic
    /// stand-in. Every attempt's outcome also feeds the shard's
    /// circuit breaker.
    ///
    /// Completion always targets `(key, flight id)`, never the key
    /// alone: keys recur (the same shape can miss again after a shard
    /// swap re-opens it), so a stale job must not be able to complete a
    /// *newer* flight with a decision computed on a replaced tuner.
    fn run_job(self: &Arc<Self>, job: Job) {
        if self.flights.pending_id(&job.key) != Some(job.flight) {
            // This job's flight was cancelled (shard removal/
            // replacement, shutdown) while the job sat queued; its
            // tickets have already been failed. Any flight now pending
            // under the key is a newer one with its own job.
            self.gauges.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // The tuner captured at submission must still be the shard's
        // current tuner: a submit that raced a remove/replace past the
        // cancel sweep would otherwise serve a decision from hardware
        // that was swapped out. Fail the flight like the sweep would
        // have.
        let current = self.shard_tuner(job.key.device, job.key.op);
        if !current.is_some_and(|t| Arc::ptr_eq(&t, &job.tuner)) {
            self.flights.cancel_if(&job.key, job.flight);
            self.gauges.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Deadline-driven shedding: if every live waiter's deadline has
        // already passed, nobody can consume this tune's decision in
        // time -- demote it to the background lane so jobs with live
        // waiters don't queue behind it. The demoted job still runs
        // (completing its flight and warming the cache), just at
        // strictly lower priority; its flag stops it re-shedding.
        if !job.demoted && self.flights.sheddable(&job.key, job.flight, Instant::now()) {
            self.gauges.shed.fetch_add(1, Ordering::Relaxed);
            self.queue.push_background(BgJob::Demoted(Box::new(Job {
                demoted: true,
                ..job
            })));
            return;
        }
        let waited = job.enqueued.elapsed().as_nanos() as u64;
        self.gauges
            .queue_wait_ns
            .fetch_add(waited, Ordering::Relaxed);
        // From here the flight is *started*: tickets dropped during the
        // tune no longer cancel it (the work is running anyway and its
        // decision still warms the cache).
        self.flights.mark_started(&job.key, job.flight);

        /// What one guarded tune attempt produced.
        enum Attempt {
            Rehit(TunedChoice),
            Cold(Option<TunedChoice>),
            /// An injected non-panic fault ([`FaultKind::Error`] /
            /// [`FaultKind::WrongDevice`]): no decision, no unwind.
            Faulted,
        }

        let fault = self.fault.read().expect("fault seam poisoned").clone();
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Re-check under flight leadership: a submitter that lost
            // the race between its cache miss and the flight claim would
            // otherwise re-tune a key the previous flight has already
            // published.
            if let Some(hit) = job.tuner.cache().peek(&job.key) {
                return Attempt::Rehit(hit);
            }
            if let Some(kind) = fault
                .as_ref()
                .and_then(|f| f.intercept(&job.key, job.attempts))
            {
                match kind {
                    FaultKind::Panic => panic!("injected tune panic (TuneFault)"),
                    FaultKind::Error | FaultKind::WrongDevice => return Attempt::Faulted,
                    FaultKind::Slow(delay) => std::thread::sleep(delay),
                }
            }
            Attempt::Cold(job.tuner.tune_shape_cold(&job.shape))
        }));
        match outcome {
            Ok(Attempt::Rehit(hit)) => {
                // Not a tune: no health signal either way.
                bump(&self.counters.cache_hits, 1);
                self.gauges.jobs_run.fetch_add(1, Ordering::Relaxed);
                self.flights
                    .complete_if(&job.key, job.flight, FlightOutcome::Rehit(hit));
                return;
            }
            Ok(Attempt::Cold(choice)) => {
                bump(&self.counters.cold_tunes, 1);
                self.gauges.jobs_run.fetch_add(1, Ordering::Relaxed);
                // A completed tune is healthy unless it blew the
                // breaker's latency SLO; either way the flight lands.
                self.record_tune_outcome(
                    job.key.device,
                    job.key.op,
                    self.within_slo(started.elapsed()),
                );
                // The cache entry (if any) is authoritative now: a
                // breaker-era ledger entry for this key is obsolete.
                self.ledger.discharge(&job.key);
                self.flights
                    .complete_if(&job.key, job.flight, FlightOutcome::Cold(choice));
                return;
            }
            Ok(Attempt::Faulted) => {}
            Err(_) => {
                // The flight entry (and its tickets) stays alive across
                // the retry; only the panic is recorded.
                self.flights.note_leader_panic();
            }
        }
        // Failure path, shared by injected errors and caught panics.
        self.record_tune_outcome(job.key.device, job.key.op, false);
        let policy = *self.retry.read().expect("retry policy poisoned");
        let attempts = job.attempts + 1;
        if attempts < policy.max_attempts.max(1) {
            self.gauges.tune_retries.fetch_add(1, Ordering::Relaxed);
            // Backoff on the worker that caught the panic: the job
            // re-queues after the pause, so a transiently sick device
            // is not hammered with the whole attempt budget back to
            // back.
            if !policy.backoff.is_zero() {
                std::thread::sleep(policy.backoff);
            }
            self.queue.push(Job {
                enqueued: Instant::now(),
                attempts,
                ..job
            });
        } else {
            // The retry budget is spent: quarantine the key and serve
            // every waiter the heuristic stand-in instead of failing
            // them outright. The memoized heuristic answers subsequent
            // submits instantly (no more retry burn), and a background
            // repair re-probes the key on an exponential backoff
            // (`retry_exhausted` records the exhaustion distinctly
            // from the per-attempt panic count in `leader_panics`).
            self.gauges.retry_exhausted.fetch_add(1, Ordering::Relaxed);
            let quarantine = *self
                .quarantine_cfg
                .read()
                .expect("quarantine config poisoned");
            let (newly, not_before) = self.ledger.poison(job.key, &quarantine, Instant::now());
            if newly {
                bump(&self.counters.quarantines, 1);
            }
            let choice = self
                .ledger
                .degraded_choice(&job.key, || Self::heuristic_for(&job.tuner, &job.shape));
            self.ensure_repair(&job.key, &job.tuner, &job.shape, not_before);
            self.flights
                .complete_if(&job.key, job.flight, FlightOutcome::Degraded(choice));
        }
    }

    /// Execute one background-lane item: a demoted cold tune runs like
    /// any job (its `demoted` flag stops it re-shedding), a prewarm
    /// re-benches one neighbour decision into the target shard's cache
    /// -- skipped (but still counted as processed) when the target was
    /// swapped out since the prewarm was enqueued; `warm_start` itself
    /// skips keys the target already holds -- and a repair re-probes
    /// one degraded/quarantined key ([`ServiceCore::run_repair`]).
    fn run_background(self: &Arc<Self>, bg: BgJob) {
        match bg {
            BgJob::Demoted(job) => self.run_job(*job),
            BgJob::Prewarm { target, source } => {
                let current = self.shard_tuner(target.device_id(), target.kind());
                if current.is_some_and(|t| Arc::ptr_eq(&t, &target)) {
                    let report = target.warm_start(std::slice::from_ref(&*source), 1);
                    self.gauges
                        .prewarmed
                        .fetch_add(report.seeded as u64, Ordering::Relaxed);
                }
                self.gauges.prewarm_jobs.fetch_add(1, Ordering::Relaxed);
            }
            BgJob::Repair {
                key,
                tuner,
                shape,
                not_before: _,
            } => self.run_repair(key, tuner, shape),
        }
    }

    /// One background repair probe for a degraded/quarantined key: a
    /// single tune attempt (no retry burn -- failure re-schedules on
    /// the quarantine's exponential backoff), upgrading the ledger
    /// entry to an authoritative cache entry on success.
    fn run_repair(self: &Arc<Self>, key: TuneKey, tuner: Arc<IsaacTuner>, shape: QueryShape) {
        self.gauges.repair_jobs.fetch_add(1, Ordering::Relaxed);
        // The shard was removed or replaced since this repair was
        // scheduled: its ledger entries are already purged, and the
        // successor shard starts with a clean bill of health.
        let current = self.shard_tuner(key.device, key.op);
        if !current.is_some_and(|t| Arc::ptr_eq(&t, &tuner)) {
            return;
        }
        // Already authoritative (a probe flight or a restore beat us):
        // nothing to repair.
        if tuner.cache().peek(&key).is_some() {
            if self.ledger.discharge(&key) {
                bump(&self.counters.repair_upgrades, 1);
            }
            return;
        }

        /// Outcome of the single repair attempt.
        enum Probe {
            /// The tune ran clean (`None` == no legal configuration,
            /// which no amount of repair will fix).
            Done(Option<TunedChoice>),
            /// An injected non-panic fault.
            Faulted,
        }

        let fault = self.fault.read().expect("fault seam poisoned").clone();
        let started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(kind) = fault.as_ref().and_then(|f| f.intercept(&key, 0)) {
                match kind {
                    FaultKind::Panic => panic!("injected tune panic (TuneFault)"),
                    FaultKind::Error | FaultKind::WrongDevice => return Probe::Faulted,
                    FaultKind::Slow(delay) => std::thread::sleep(delay),
                }
            }
            Probe::Done(tuner.tune_shape_cold(&shape))
        }));
        match outcome {
            Ok(Probe::Done(choice)) => {
                // The tuned path works again (even a no-legal-config
                // answer is the tuner speaking, not a fault): feed the
                // breaker and release the quarantine. Only a published
                // decision counts as an *upgrade*.
                bump(&self.counters.cold_tunes, 1);
                self.record_tune_outcome(key.device, key.op, self.within_slo(started.elapsed()));
                let upgraded = choice.is_some() && self.ledger.discharge(&key);
                if upgraded {
                    bump(&self.counters.repair_upgrades, 1);
                } else if choice.is_none() {
                    self.ledger.discharge(&key);
                }
            }
            Ok(Probe::Faulted) | Err(_) => {
                // Still sick: escalate the backoff and try again later.
                // Repair probes are not flight leaders, so a panic here
                // does not count into `leader_panics`.
                self.record_tune_outcome(key.device, key.op, false);
                let quarantine = *self
                    .quarantine_cfg
                    .read()
                    .expect("quarantine config poisoned");
                let next = self.ledger.repair_failed(&key, &quarantine, Instant::now());
                self.queue.push_background(BgJob::Repair {
                    key,
                    tuner,
                    shape,
                    not_before: next,
                });
            }
        }
    }

    /// Cancel every pending flight matching `pred`, failing its tickets
    /// (each ticket waiter counts itself into the `failed` stat).
    fn fail_flights(&self, pred: impl Fn(&TuneKey) -> bool) -> usize {
        self.flights.cancel_matching(pred)
    }

    /// Shard-lifecycle health teardown: drop the `(device, op)` breaker
    /// and purge its keys from the quarantine ledger -- health verdicts
    /// indict hardware, and this hardware just left the fleet. Any
    /// still-queued repair job for the old tuner no-ops on its
    /// `Arc::ptr_eq` staleness check.
    fn reset_shard_health(&self, device: u16, op: OpKind) {
        self.health
            .write()
            .expect("health map poisoned")
            .remove(&(device, op));
        self.ledger
            .purge(|key| key.device == device && key.op == op);
    }
}

/// The async-first serving front door; see the module docs.
#[derive(Debug)]
pub struct TuneService {
    core: Arc<ServiceCore>,
    pool: WorkerPool,
}

impl Default for TuneService {
    fn default() -> Self {
        Self::new()
    }
}

impl TuneService {
    /// A service with the default worker pool: one worker per rayon
    /// thread (`RAYON_NUM_THREADS` honoured), capped at 8 -- cold tunes
    /// already fan out internally, so the pool only needs enough width
    /// to overlap distinct keys.
    pub fn new() -> Self {
        Self::with_workers(rayon::current_num_threads().clamp(1, 8))
    }

    /// A service with an explicit worker-pool width (clamped to >= 1).
    pub fn with_workers(workers: usize) -> Self {
        let core = Arc::new(ServiceCore {
            shards: RwLock::new(BTreeMap::new()),
            flights: SingleFlight::new(),
            counters: Counters::default(),
            queue: MissQueue::new(),
            gauges: Gauges::default(),
            tickets: Arc::new(OpenTickets::default()),
            admission: Admission::default(),
            snapshots: Mutex::new(None),
            wal: Mutex::new(None),
            last_recovery: Mutex::new(None),
            retry: RwLock::new(RetryPolicy::default()),
            fault: RwLock::new(None),
            health: RwLock::new(HashMap::new()),
            breaker_cfg: RwLock::new(BreakerConfig::default()),
            quarantine_cfg: RwLock::new(QuarantineConfig::default()),
            ledger: DegradedLedger::default(),
        });
        let worker_core = Arc::clone(&core);
        let pool = WorkerPool::spawn(workers, move || worker_core.work());
        TuneService { core, pool }
    }

    /// Worker threads draining the miss queue.
    pub fn workers(&self) -> usize {
        self.pool.len()
    }

    // ---- shard lifecycle -------------------------------------------------

    /// Register a tuner as the shard for `device` (slotted by the
    /// tuner's operation kind). The tuner's cache keys are rebound to
    /// the shard's device ordinal. If the slot was already occupied this
    /// is a hot-swap: the previous tuner is replaced and its pending
    /// flights fail their tickets (see [`TuneService::replace_shard`]).
    pub fn add_shard(&self, device: u16, tuner: IsaacTuner) -> Arc<IsaacTuner> {
        let (tuner, _old) = self.install_shard(device, tuner);
        tuner
    }

    /// Hot-swap the shard for `device` / the tuner's op kind, returning
    /// the replaced tuner (if any). Queries already in flight against
    /// the old tuner are **failed** (`Served::Failed`), not silently
    /// served from a device that no longer exists; queries submitted
    /// after the swap tune on the new tuner.
    pub fn replace_shard(&self, device: u16, tuner: IsaacTuner) -> Option<Arc<IsaacTuner>> {
        self.install_shard(device, tuner).1
    }

    fn install_shard(
        &self,
        device: u16,
        mut tuner: IsaacTuner,
    ) -> (Arc<IsaacTuner>, Option<Arc<IsaacTuner>>) {
        tuner.set_device_id(device);
        let op = tuner.kind();
        let tuner = Arc::new(tuner);
        let old = {
            let mut shards = self.core.shards.write().expect("shard map poisoned");
            shards
                .entry(device)
                .or_default()
                .tuners
                .insert(op, Arc::clone(&tuner))
        };
        if let Some(old) = &old {
            self.core
                .fail_flights(|key| key.device == device && key.op == op);
            // A hot-swap invalidates the outgoing tuner's persisted
            // state: recovery must never resurrect decisions tuned for
            // hardware that was swapped out.
            self.core.gc_shard_files(device, op, Some(old));
            // ...and its health record: quarantines indicted the old
            // hardware, and the successor starts with a closed breaker.
            self.core.reset_shard_health(device, op);
        }
        self.core.attach_journal(device, op, &tuner);
        (tuner, old)
    }

    /// Unregister the `(device, op)` shard, failing its pending tickets
    /// (`Served::Failed`) rather than stranding them; queued jobs for
    /// the shard are dropped when a worker reaches them. Returns the
    /// removed tuner, whose cache can still be snapshotted or used to
    /// warm-start a successor.
    pub fn remove_shard(&self, device: u16, op: OpKind) -> Option<Arc<IsaacTuner>> {
        let removed = {
            let mut shards = self.core.shards.write().expect("shard map poisoned");
            let shard = shards.get_mut(&device)?;
            let removed = shard.tuners.remove(&op);
            if shard.is_empty() {
                shards.remove(&device);
            }
            removed
        };
        if let Some(removed) = &removed {
            self.core
                .fail_flights(|key| key.device == device && key.op == op);
            self.core.gc_shard_files(device, op, Some(removed));
            self.core.reset_shard_health(device, op);
        }
        removed
    }

    /// The tuner serving `(device, op)`, if registered.
    pub fn shard_tuner(&self, device: u16, op: OpKind) -> Option<Arc<IsaacTuner>> {
        self.core.shard_tuner(device, op)
    }

    /// Registered device ordinals, ascending.
    pub fn devices(&self) -> Vec<u16> {
        self.core.device_ids()
    }

    // ---- submission ------------------------------------------------------

    /// Submit one query. Never blocks: a cache hit (or a refusal for an
    /// unregistered shard) returns a pre-resolved ticket, a miss
    /// enqueues the cold tune and returns a pending ticket that resolves
    /// through the single-flight table -- concurrent submissions of the
    /// same key share one tune no matter how many tickets watch it.
    ///
    /// # Examples
    ///
    /// ```
    /// use isaac_core::{IsaacTuner, OpKind, TrainOptions};
    /// use isaac_device::specs::tesla_p100;
    /// use isaac_device::DType;
    /// use isaac_gen::shapes::GemmShape;
    /// use isaac_serve::{Query, Served, TuneService};
    ///
    /// // A deliberately tiny tuner so the example trains in well under
    /// // a second; deployments use `TrainOptions::default()`.
    /// let tuner = IsaacTuner::train(
    ///     tesla_p100(),
    ///     OpKind::Gemm,
    ///     TrainOptions {
    ///         samples: 500,
    ///         hidden: vec![8],
    ///         epochs: 1,
    ///         top_k: 4,
    ///         ..Default::default()
    ///     },
    /// );
    /// let service = TuneService::new();
    /// service.add_shard(0, tuner);
    ///
    /// let query = Query::gemm(0, GemmShape::new(96, 64, 48, "N", "T", DType::F32));
    /// // First sight of the shape: the ticket resolves once the worker
    /// // pool finishes the cold tune.
    /// let first = service.submit(&query).wait();
    /// assert_eq!(first.served, Served::Tuned);
    /// assert!(first.choice.is_some(), "a kernel was selected");
    ///
    /// // Every repeat is an O(1) cache hit, pre-resolved at submission.
    /// let repeat = service.submit(&query);
    /// assert!(repeat.is_ready());
    /// assert_eq!(repeat.wait().served, Served::Cache);
    /// ```
    pub fn submit(&self, query: &Query) -> TuneTicket {
        self.submit_with(query, &SubmitOptions::default())
    }

    /// [`TuneService::submit`] with per-query [`SubmitOptions`] -- most
    /// importantly a **deadline** baked into the returned ticket:
    /// consuming the ticket past the deadline yields
    /// [`Served::TimedOut`] rather than blocking longer, while the
    /// flight itself keeps running for any other waiters (and still
    /// publishes the decision to the cache for the next query).
    pub fn submit_with(&self, query: &Query, opts: &SubmitOptions) -> TuneTicket {
        bump(&self.core.counters.queries, 1);
        let key = query.key();
        match self.core.fast_path(query, &key) {
            FastPath::Done(decision) => TuneTicket::ready(decision),
            FastPath::Miss(tuner) => {
                // Self-healing gate: a quarantined key or an open
                // breaker answers the heuristic immediately -- before
                // admission, since a degraded answer never charges the
                // tuning backend.
                if let Some(decision) = self.core.try_degrade(&key, &tuner, &query.shape) {
                    return TuneTicket::ready(decision);
                }
                // Admission runs only on the miss path: quotas guard
                // the expensive tuning backend, not the O(1) cache.
                let Ok(slot) = self.core.admission.admit(opts.tenant) else {
                    return TuneTicket::ready(Decision {
                        choice: None,
                        served: Served::Rejected,
                    });
                };
                let deadline = opts.deadline.map(|d| Instant::now() + d);
                let (ticket, job) =
                    self.core
                        .register_miss(tuner, query.shape, key, true, deadline, Some(slot));
                if let Some(job) = job {
                    self.core.queue.push(job);
                }
                ticket
            }
        }
    }

    /// Submit a batch, returning one ticket per query position.
    /// Duplicate keys inside the batch are deduplicated: the first
    /// occurrence of a cold key leads (or joins) the flight and its
    /// duplicates register as waiters on the same flight, so the batch
    /// costs one resolution per *unique* key. Duplicates of an inline
    /// outcome (cache hit / no shard) read it truthfully; duplicates of
    /// a cold tune read `Served::Coalesced`.
    ///
    /// Batch misses are admitted under tenant `0`, one in-flight charge
    /// per unique key (in-batch duplicates ride the first occurrence's
    /// charge); an over-quota unique resolves the whole duplicate group
    /// to [`Served::Rejected`].
    pub fn submit_batch(&self, queries: &[Query]) -> Vec<TuneTicket> {
        bump(&self.core.counters.queries, queries.len() as u64);
        bump(&self.core.counters.batches, 1);
        let plan = plan(queries);
        bump(&self.core.counters.batch_deduped, plan.deduped() as u64);

        /// Per-unique outcome: an inline decision to clone into every
        /// position, or the miss context duplicates join waiters on.
        enum Unique {
            Inline(Decision),
            Pending {
                ticket: Option<TuneTicket>,
                tuner: Arc<IsaacTuner>,
                shape: QueryShape,
            },
        }

        // Resolve the uniques first, holding every Led job back until
        // all in-batch waiters are registered: a flight cannot complete
        // before its job is queued, so duplicates are guaranteed to join
        // rather than accidentally re-lead.
        let mut jobs = Vec::new();
        let mut uniques: Vec<Unique> = plan
            .uniques
            .iter()
            .zip(&plan.keys)
            .map(|(&qi, key)| {
                let query = &queries[qi];
                match self.core.fast_path(query, key) {
                    FastPath::Done(decision) => Unique::Inline(decision),
                    FastPath::Miss(tuner) => {
                        // Self-healing gate, like `submit_with`:
                        // degraded uniques resolve inline (their
                        // duplicates read the same decision) and never
                        // charge admission.
                        if let Some(decision) = self.core.try_degrade(key, &tuner, &query.shape) {
                            Unique::Inline(decision)
                        } else {
                            match self.core.admission.admit(0) {
                                Err(()) => Unique::Inline(Decision {
                                    choice: None,
                                    served: Served::Rejected,
                                }),
                                Ok(slot) => {
                                    let (ticket, job) = self.core.register_miss(
                                        Arc::clone(&tuner),
                                        query.shape,
                                        *key,
                                        true,
                                        None,
                                        Some(slot),
                                    );
                                    jobs.extend(job);
                                    Unique::Pending {
                                        ticket: Some(ticket),
                                        tuner,
                                        shape: query.shape,
                                    }
                                }
                            }
                        }
                    }
                }
            })
            .collect();

        let tickets: Vec<TuneTicket> = plan
            .slot_of
            .iter()
            .enumerate()
            .map(|(i, &slot)| match &mut uniques[slot] {
                Unique::Inline(decision) => TuneTicket::ready(decision.clone()),
                Unique::Pending {
                    ticket,
                    tuner,
                    shape,
                } => {
                    if plan.uniques[slot] == i {
                        ticket.take().expect("first occurrence takes its ticket")
                    } else {
                        // In-batch duplicate: its own waiter on the same
                        // flight (counted by `batch_deduped`, not
                        // `coalesced`; the first occurrence carries the
                        // group's admission charge).
                        let (ticket, job) = self.core.register_miss(
                            Arc::clone(tuner),
                            *shape,
                            plan.keys[slot],
                            false,
                            None,
                            None,
                        );
                        jobs.extend(job);
                        ticket
                    }
                }
            })
            .collect();

        for job in jobs {
            self.core.queue.push(job);
        }
        tickets
    }

    // ---- snapshot / restore ----------------------------------------------

    /// Persist every shard's decision cache under `dir` (created if
    /// missing), one device-tagged v2 cache file per `(device, op)`
    /// shard, named [`snapshot_file_name`]. Pair with
    /// [`TuneService::restore_all`] on the next boot so the restarted
    /// service serves its old working set from cache. For hands-off
    /// periodic persistence, see [`TuneService::enable_snapshots`].
    pub fn snapshot_all(&self, dir: &Path) -> std::io::Result<SnapshotReport> {
        self.core.snapshot_shards(dir, false)
    }

    /// Start (or reschedule) the **background snapshotter**: every
    /// `interval`, a worker from the miss-queue pool persists the
    /// caches of *dirty* shards under `dir` -- shards untouched since
    /// their last save are skipped, so an idle fleet writes nothing.
    /// Dropping the service runs one final flush of whatever is still
    /// dirty, so a clean shutdown loses no tuning work and a crash
    /// loses at most one interval's worth.
    ///
    /// Snapshots ride on the existing worker pool (no extra thread): a
    /// worker that finds the queue idle past the deadline runs the
    /// snapshot; under sustained load the write happens between jobs.
    /// Progress is visible in [`RouterStats::snapshots`] /
    /// [`RouterStats::snapshot_entries`] /
    /// [`RouterStats::snapshot_errors`] and
    /// [`TuneService::last_snapshot`].
    pub fn enable_snapshots(&self, dir: impl Into<PathBuf>, interval: Duration) {
        {
            let mut schedule = self
                .core
                .snapshots
                .lock()
                .expect("snapshot schedule poisoned");
            *schedule = Some(SnapshotSchedule {
                dir: dir.into(),
                interval,
                next_due: Instant::now() + interval,
                last: None,
                wal: false,
            });
        }
        // Wake the pool so sleeping workers pick up the new deadline.
        self.core.queue.kick();
    }

    /// Switch the fleet to **write-ahead durability**: every shard's
    /// cache journals each publish and policy eviction as a CRC32-framed
    /// record appended to `shard-<dev>-<op>.wal` under `dir` *at the
    /// moment it happens*, and the interval work becomes **compaction**
    /// -- folding the log into the shard's base cache file and
    /// truncating it -- instead of a whole-file rewrite. A crash
    /// therefore loses at most the one record being appended (whose
    /// ticket never resolved), not a full interval of decisions; boot
    /// the next process with [`TuneService::recover_all`].
    ///
    /// Appends are on the publish path but *off* the query path: a hit
    /// touches no I/O, and an append failure (flaky disk) never fails
    /// the publish -- it is counted in
    /// [`RouterStats::wal_append_errors`] and the decision stays
    /// served from memory until a later compaction persists it.
    ///
    /// Compaction rides the worker pool exactly like
    /// [`TuneService::enable_snapshots`] (whose schedule this
    /// replaces), and the shutdown flush compacts one final time.
    pub fn enable_durability(&self, dir: impl Into<PathBuf>, interval: Duration) {
        self.enable_durability_with(dir, interval, Arc::new(StdIo));
    }

    /// [`TuneService::enable_durability`] with an explicit
    /// [`DurabilityIo`] -- the fault-injection seam: every read, append,
    /// write, rename, truncate and crash point of the durability layer
    /// routes through `io` (see `isaac_core::durability::FaultIo`).
    pub fn enable_durability_with(
        &self,
        dir: impl Into<PathBuf>,
        interval: Duration,
        io: Arc<dyn DurabilityIo>,
    ) {
        let dir = dir.into();
        // Best-effort: appends create files on demand, but the
        // directory must exist before the first one.
        let _ = io.create_dir_all(&dir);
        {
            let mut wal = self.core.wal.lock().expect("wal state poisoned");
            *wal = Some(WalState {
                dir: dir.clone(),
                io,
                writers: HashMap::new(),
            });
        }
        for (device, op, tuner) in self.core.shard_list() {
            self.core.attach_journal(device, op, &tuner);
        }
        {
            let mut schedule = self
                .core
                .snapshots
                .lock()
                .expect("snapshot schedule poisoned");
            *schedule = Some(SnapshotSchedule {
                dir,
                interval,
                next_due: Instant::now() + interval,
                last: None,
                wal: true,
            });
        }
        self.core.queue.kick();
    }

    /// Run one compaction sweep synchronously (durability mode only):
    /// every shard with a dirty cache or a non-empty WAL gets a fresh
    /// base file and a truncated log, and orphaned persistence files
    /// are GC'd. What the background interval does, on demand.
    pub fn compact_now(&self) -> std::io::Result<SnapshotReport> {
        let dir = self
            .core
            .wal
            .lock()
            .expect("wal state poisoned")
            .as_ref()
            .map(|s| s.dir.clone())
            .ok_or_else(|| std::io::Error::other("durability is not enabled"))?;
        let report = self.core.run_compaction_sweep(&dir)?;
        let mut schedule = self
            .core
            .snapshots
            .lock()
            .expect("snapshot schedule poisoned");
        if let Some(s) = schedule.as_mut() {
            s.last = Some(report);
        }
        Ok(report)
    }

    /// Recover every registered shard from the WAL layout under `dir`:
    /// merge the shard's base cache file, truncate its WAL at the first
    /// torn or corrupt record (dropped records are *counted*, never
    /// replayed as garbage), and replay the surviving records in order.
    /// Files for unregistered `(device, op)` pairs count as
    /// [`SnapshotReport::unmatched`]. Corruption totals also land in
    /// [`RouterStats::recovery_torn_records`] /
    /// [`RouterStats::recovery_skipped_records`], so a flaky disk shows
    /// up in stats instead of as silent cache shrinkage.
    ///
    /// Call before [`TuneService::enable_durability`]: shards must not
    /// be journaling while their own log is replayed into them.
    pub fn recover_all(&self, dir: &Path) -> std::io::Result<SnapshotReport> {
        self.recover_all_with(dir, &StdIo)
    }

    /// [`TuneService::recover_all`] through an explicit
    /// [`DurabilityIo`] (the fault-injection seam).
    pub fn recover_all_with(
        &self,
        dir: &Path,
        io: &dyn DurabilityIo,
    ) -> std::io::Result<SnapshotReport> {
        let mut report = SnapshotReport::default();
        let shards = self.core.shard_list();
        for (device, op, tuner) in &shards {
            let recovery = recover_shard(io, dir, *device, *op, tuner)?;
            if recovery.loaded > 0 || recovery.replayed > 0 {
                report.files += 1;
            }
            report.entries += recovery.loaded;
            report.replayed += recovery.replayed;
            report.torn_records += recovery.torn_records;
            report.skipped += recovery.skipped;
        }
        for name in io.read_dir(dir).unwrap_or_default() {
            let owner = parse_snapshot_file_name(&name)
                .or_else(|| crate::durability::parse_wal_file_name(&name));
            if let Some((device, op)) = owner {
                if !shards.iter().any(|(d, o, _)| *d == device && *o == op) {
                    report.unmatched += 1;
                }
            }
        }
        bump(
            &self.core.counters.recovery_replayed,
            report.replayed as u64,
        );
        bump(
            &self.core.counters.recovery_torn_records,
            report.torn_records as u64,
        );
        bump(
            &self.core.counters.recovery_skipped_records,
            report.skipped as u64,
        );
        *self
            .core
            .last_recovery
            .lock()
            .expect("recovery report poisoned") = Some(report);
        Ok(report)
    }

    /// Stop the background snapshotter **without** a final flush --
    /// anything dirty stays unpersisted (this is how the crash tests
    /// simulate losing the tail interval). Returns the last completed
    /// background report, if any. A clean shutdown does not need this:
    /// dropping the service flushes by itself.
    pub fn disable_snapshots(&self) -> Option<SnapshotReport> {
        self.core
            .snapshots
            .lock()
            .expect("snapshot schedule poisoned")
            .take()
            .and_then(|s| s.last)
    }

    /// The report of the most recent completed background snapshot or
    /// compaction sweep, falling back to the most recent
    /// [`TuneService::recover_all`] report (so recovery's corruption
    /// counts stay inspectable after boot). `None` until one of them
    /// has run.
    pub fn last_snapshot(&self) -> Option<SnapshotReport> {
        self.core
            .snapshots
            .lock()
            .expect("snapshot schedule poisoned")
            .as_ref()
            .and_then(|s| s.last)
            .or_else(|| {
                *self
                    .core
                    .last_recovery
                    .lock()
                    .expect("recovery report poisoned")
            })
    }

    /// Load every snapshot file in `dir` (written by
    /// [`TuneService::snapshot_all`]) into the matching registered
    /// shard. Files for unregistered `(device, op)` pairs are counted in
    /// [`SnapshotReport::unmatched`]; malformed lines inside a file are
    /// counted in [`SnapshotReport::skipped`].
    pub fn restore_all(&self, dir: &Path) -> std::io::Result<SnapshotReport> {
        let mut report = SnapshotReport::default();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some((device, op)) = parse_snapshot_file_name(&name.to_string_lossy()) else {
                continue;
            };
            match self.shard_tuner(device, op) {
                Some(tuner) => {
                    let loaded = tuner.load_cache(&entry.path())?;
                    report.files += 1;
                    report.entries += loaded.loaded;
                    report.skipped += loaded.skipped;
                }
                None => report.unmatched += 1,
            }
        }
        Ok(report)
    }

    // ---- warm start ------------------------------------------------------

    /// Seed the `(target, op)` shard's cache from the `(source, op)`
    /// shard's decisions; see `IsaacTuner::warm_start`. Returns `None`
    /// if either shard is missing.
    pub fn warm_start(
        &self,
        target: u16,
        source: u16,
        op: OpKind,
        top_k: usize,
    ) -> Option<WarmStartReport> {
        let src = self.shard_tuner(source, op)?;
        let dst = self.shard_tuner(target, op)?;
        let neighbour: Vec<_> = src
            .cache()
            .entries()
            .into_iter()
            .map(|(key, choice, _hits)| (key, choice))
            .collect();
        Some(dst.warm_start(&neighbour, top_k))
    }

    // ---- admission & SLO -------------------------------------------------

    /// Bound every tenant's misses in flight: a submit whose tenant
    /// ([`SubmitOptions::tenant`]) already has `quota` unresolved
    /// pending tickets resolves immediately to [`Served::Rejected`]
    /// instead of reaching the tuning backend. `None` (the default)
    /// admits everything. Per-tenant overrides
    /// ([`TuneService::set_tenant_quota`]) beat this default. The
    /// charge is released when the ticket's cell resolves -- by
    /// decision, failure, *or* deadline expiry -- so abandoning slow
    /// queries under a deadline frees quota immediately.
    pub fn set_admission_quota(&self, quota: Option<u64>) {
        self.core.admission.set_default_quota(quota);
    }

    /// Override one tenant's admission quota; `None` clears the
    /// override back to the [`TuneService::set_admission_quota`]
    /// default.
    pub fn set_tenant_quota(&self, tenant: u16, quota: Option<u64>) {
        self.core.admission.set_tenant_quota(tenant, quota);
    }

    /// Admission counters of every tenant seen so far, in tenant order.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        self.core.admission.stats()
    }

    /// Predictive warm-start for trending-hot keys: every cached
    /// decision with at least `min_hits` hits is offered to every
    /// *other* same-op shard that does not hold the key yet, as one
    /// background-lane job per `(decision, target)` pair -- the
    /// `warm_start` rebench path, orders of magnitude cheaper than a
    /// cold tune, running strictly behind foreground work. Returns the
    /// number of prewarm jobs enqueued; completions land in
    /// [`ServiceStats::prewarmed`] / [`ServiceStats::prewarm_jobs`].
    pub fn prewarm_hot(&self, min_hits: u64) -> usize {
        let shards = self.core.shard_list();
        let mut enqueued = 0;
        for (device, op, tuner) in &shards {
            let hot: Vec<(TuneKey, TunedChoice)> = tuner
                .cache()
                .entries()
                .into_iter()
                .filter(|&(_, _, hits)| hits >= min_hits)
                .map(|(key, choice, _hits)| (key, choice))
                .collect();
            if hot.is_empty() {
                continue;
            }
            for (other_device, other_op, target) in &shards {
                if other_op != op || other_device == device {
                    continue;
                }
                for (key, choice) in &hot {
                    if target.cache().peek(&key.on_device(*other_device)).is_some() {
                        continue;
                    }
                    self.core.queue.push_background(BgJob::Prewarm {
                        target: Arc::clone(target),
                        source: Box::new((*key, choice.clone())),
                    });
                    enqueued += 1;
                }
            }
        }
        enqueued
    }

    // ---- control & introspection -----------------------------------------

    /// Pause the worker pool: submissions keep queueing and tickets stay
    /// pending, but no new cold tunes start (quiesce for maintenance /
    /// deterministic tests). Resume with [`TuneService::resume`].
    pub fn pause(&self) {
        self.core.queue.set_paused(true);
    }

    /// Resume a paused worker pool.
    pub fn resume(&self) {
        self.core.queue.set_paused(false);
    }

    /// Serving counters (same schema as the deprecated router's). In
    /// durability mode the WAL append totals are read live from the
    /// per-shard journal writers.
    pub fn stats(&self) -> RouterStats {
        let mut stats = self.core.counters.snapshot();
        if let Some(state) = self.core.wal.lock().expect("wal state poisoned").as_ref() {
            for writer in state.writers.values() {
                let (appends, bytes, errors) = writer.counters();
                stats.wal_appends += appends;
                stats.wal_bytes += bytes;
                stats.wal_append_errors += errors;
            }
        }
        stats
    }

    /// Single-flight counters, including leader panics.
    pub fn flight_stats(&self) -> FlightStats {
        self.core.flights.stats()
    }

    /// Flights currently pending (unique keys being tuned or queued).
    pub fn in_flight(&self) -> usize {
        self.core.flights.in_flight()
    }

    /// Queue / ticket gauges of the async path. One relaxed load per
    /// field: cheap, but counters written concurrently by different
    /// workers can be observed torn relative to each other -- use
    /// [`ServiceStats::snapshot`] when cross-counter invariants matter.
    pub fn service_stats(&self) -> ServiceStats {
        // Aggregate the per-shard segmented cache counters (striped,
        // monotonic) alongside the gauges so the consistent-read loop
        // in `ServiceStats::snapshot` covers them too.
        let (shard_cache_hits, shard_cache_misses) = self
            .core
            .shard_list()
            .iter()
            .map(|(_, _, tuner)| tuner.cache_stats())
            .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));
        ServiceStats {
            shard_cache_hits,
            shard_cache_misses,
            open_tickets: self.core.tickets.open(),
            peak_open_tickets: self.core.tickets.peak(),
            queue_depth: self.core.queue.depth() as u64,
            jobs_run: self.core.gauges.jobs_run.load(Ordering::Relaxed),
            jobs_cancelled: self.core.gauges.jobs_cancelled.load(Ordering::Relaxed),
            tune_retries: self.core.gauges.tune_retries.load(Ordering::Relaxed),
            retry_exhausted: self.core.gauges.retry_exhausted.load(Ordering::Relaxed),
            timed_out: self.core.tickets.timeouts(),
            queue_wait_s_total: self.core.gauges.queue_wait_ns.load(Ordering::Relaxed) as f64 / 1e9,
            rejected: self.core.admission.rejected_total(),
            shed: self.core.gauges.shed.load(Ordering::Relaxed),
            background_depth: self.core.queue.background_depth() as u64,
            prewarmed: self.core.gauges.prewarmed.load(Ordering::Relaxed),
            prewarm_jobs: self.core.gauges.prewarm_jobs.load(Ordering::Relaxed),
            repair_jobs: self.core.gauges.repair_jobs.load(Ordering::Relaxed),
        }
    }

    /// Replace the worker pool's tune-retry policy; see [`RetryPolicy`].
    /// Takes effect for the next caught panic (jobs already re-queued
    /// keep their accumulated attempt count).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.core.retry.write().expect("retry policy poisoned") = policy;
    }

    /// The current tune-retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.core.retry.read().expect("retry policy poisoned")
    }

    // ---- self-healing controls ----

    /// Install (or clear, with `None`) the tuning-path fault seam.
    /// Every subsequent cold-tune attempt -- foreground, demoted, and
    /// repair jobs alike -- consults it before running; see
    /// [`crate::fault`]. Replaces the old `inject_tune_panics` hook.
    pub fn set_tune_fault(&self, fault: Option<Arc<dyn TuneFault>>) {
        *self.core.fault.write().expect("fault seam poisoned") = fault;
    }

    /// Replace the per-shard circuit-breaker tuning. Takes effect for
    /// the next recorded tune outcome; existing breaker state (windows,
    /// open timers) is kept.
    pub fn set_breaker_config(&self, cfg: BreakerConfig) {
        *self.core.breaker_cfg.write().expect("breaker cfg poisoned") = cfg;
    }

    /// The current circuit-breaker configuration.
    pub fn breaker_config(&self) -> BreakerConfig {
        *self.core.breaker_cfg.read().expect("breaker cfg poisoned")
    }

    /// Replace the poison-key quarantine tuning (TTL and backoff cap).
    pub fn set_quarantine_config(&self, cfg: QuarantineConfig) {
        *self
            .core
            .quarantine_cfg
            .write()
            .expect("quarantine cfg poisoned") = cfg;
    }

    /// The current quarantine configuration.
    pub fn quarantine_config(&self) -> QuarantineConfig {
        *self
            .core
            .quarantine_cfg
            .read()
            .expect("quarantine cfg poisoned")
    }

    /// The circuit-breaker state of one shard's tuning path. A shard
    /// that has never recorded an outcome (or isn't registered) reports
    /// [`BreakerState::Closed`].
    pub fn breaker_state(&self, device: u16, op: OpKind) -> BreakerState {
        self.core
            .health
            .read()
            .expect("health map poisoned")
            .get(&(device, op))
            .map(|h| h.state())
            .unwrap_or(BreakerState::Closed)
    }

    /// Whether `key` is currently quarantined (exhausted its retry
    /// budget and is serving instant [`Served::Degraded`] answers while
    /// background repair backs off).
    pub fn is_quarantined(&self, key: &TuneKey) -> bool {
        self.core.ledger.is_poisoned(key)
    }

    /// Number of keys currently quarantined.
    pub fn quarantined_keys(&self) -> usize {
        self.core.ledger.poisoned_count()
    }
}

impl ServiceStats {
    /// A *consistent* gauge read: [`TuneService::service_stats`] loads
    /// each counter independently, so a snapshot taken while workers
    /// run can be torn across fields (e.g. `jobs_run` bumped but its
    /// `queue_wait_s_total` not yet). This re-samples until two
    /// consecutive reads agree -- on a quiescent service that's two
    /// cheap passes; under churn it returns the last sample after a
    /// bounded number of tries, which is no worse than the single read.
    ///
    /// The loop also covers the aggregated per-shard cache counters
    /// ([`ServiceStats::shard_cache_hits`] /
    /// [`ServiceStats::shard_cache_misses`]): those sum many striped
    /// per-segment cells, and a sum taken mid-traffic can lag -- but
    /// every stripe is monotonic, so between two snapshot calls the
    /// aggregated totals never go backwards (regression-tested).
    pub fn snapshot(service: &TuneService) -> ServiceStats {
        let mut prev = service.service_stats();
        for _ in 0..8 {
            let next = service.service_stats();
            if next == prev {
                return next;
            }
            prev = next;
        }
        prev
    }
}

impl Drop for TuneService {
    fn drop(&mut self) {
        // Stop the queue, then fail every still-pending flight so no
        // ticket (held by another thread) blocks forever. An in-flight
        // tune finishing after the cancel publishes to the cache but
        // finds no flight -- harmless.
        let orphaned = self.core.queue.begin_shutdown();
        drop(orphaned);
        self.core.fail_flights(|_| true);
        // Join the workers *now* (drop would too, but later), so the
        // final snapshot flush below cannot miss a decision published
        // by a still-running tune.
        self.pool.join();
        let snapshot_dir = self
            .core
            .snapshots
            .lock()
            .expect("snapshot schedule poisoned")
            .as_ref()
            .map(|s| (s.dir.clone(), s.wal));
        if let Some((dir, wal_mode)) = snapshot_dir {
            // Flush-on-shutdown: snapshot whatever the last interval
            // left dirty, or (durability mode) compact the logs one
            // final time so the next boot replays nothing. Errors are
            // counted (the stats are about to die with us, but the
            // counter keeps the path honest).
            let outcome = if wal_mode {
                self.core.run_compaction_sweep(&dir)
            } else {
                self.core.snapshot_shards(&dir, true)
            };
            match outcome {
                Ok(report) if report.files == 0 => {}
                Ok(report) => {
                    bump(&self.core.counters.snapshots, 1);
                    bump(&self.core.counters.snapshot_entries, report.entries as u64);
                }
                Err(_) => bump(&self.core.counters.snapshot_errors, 1),
            }
        }
    }
}

/// Snapshot file name for one `(device, op)` shard:
/// `shard-<device>-<op>.cache`.
pub fn snapshot_file_name(device: u16, op: OpKind) -> String {
    format!("shard-{device}-{op}.cache")
}

/// Inverse of [`snapshot_file_name`]; `None` for foreign files.
pub fn parse_snapshot_file_name(name: &str) -> Option<(u16, OpKind)> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".cache")?;
    let (device, op) = rest.split_once('-')?;
    let device = device.parse().ok()?;
    Some((device, OpKind::parse(op)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_file_names_roundtrip() {
        for (device, op) in [(0, OpKind::Gemm), (7, OpKind::Conv), (65535, OpKind::Gemm)] {
            let name = snapshot_file_name(device, op);
            assert_eq!(parse_snapshot_file_name(&name), Some((device, op)));
        }
        assert_eq!(parse_snapshot_file_name("shard-1-gemm.txt"), None);
        assert_eq!(parse_snapshot_file_name("shard-x-gemm.cache"), None);
        assert_eq!(parse_snapshot_file_name("shard-1-sgemm.cache"), None);
        assert_eq!(parse_snapshot_file_name("model.txt"), None);
    }
}
