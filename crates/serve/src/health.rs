//! Per-shard health tracking and the poison-key quarantine ledger.
//!
//! Two independent defenses keep a sick fleet answering:
//!
//! * **[`ShardHealth`]** -- a circuit breaker per `(device, op)` shard.
//!   Every cold-tune outcome (success/failure, latency vs. an optional
//!   SLO) lands in a rolling window; too many failures trip the breaker
//!   `Closed -> Open`, and while open every *new* miss on that shard is
//!   served by the model-free heuristic ([`crate::Served::Degraded`])
//!   instead of queueing behind a broken tuner. After an exponentially
//!   backed-off TTL the breaker goes `HalfOpen` and lets exactly one
//!   probe flight through; a healthy probe re-closes it, a failed probe
//!   re-opens it with a doubled TTL.
//!
//! * **`DegradedLedger`** -- per-key quarantine. A key whose flight
//!   exhausts its [`crate::RetryPolicy`] is *poisoned*: subsequent
//!   submits answer `Degraded` instantly (memoized heuristic, no queue,
//!   no retry burn), while a background repair job re-probes the key on
//!   an exponential schedule and upgrades the cache entry once a tune
//!   finally lands. Breaker-driven degrades use the same ledger with
//!   `poisoned == false`, purely to memoize the heuristic and dedupe
//!   repair scheduling.
//!
//! The state machines live here, pure and lock-small, so they unit-test
//! without a service; `service.rs` wires them to the worker loop and
//! `tests/chaos_serve.rs` drives them through seeded fault scripts.

use isaac_core::{TuneKey, TunedChoice};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// One shard breaker's position in the `Closed -> Open -> HalfOpen`
/// state machine ([`crate::TuneService::breaker_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: misses flow to the tuner; outcomes fill the window.
    #[default]
    Closed,
    /// Tripped: new misses on this shard serve degraded until the TTL
    /// expires.
    Open,
    /// TTL expired: exactly one probe flight is allowed through; its
    /// outcome decides re-close vs re-open (with a doubled TTL).
    HalfOpen,
}

/// Circuit-breaker tuning knobs, per service
/// ([`crate::TuneService::set_breaker_config`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Rolling outcome-window length (cold-tune attempts).
    pub window: usize,
    /// Unhealthy outcomes within the window that trip the breaker.
    pub failure_threshold: u32,
    /// Open TTL after the first trip; doubles per consecutive re-open.
    pub open_ttl: Duration,
    /// Ceiling for the exponential open TTL.
    pub max_open_ttl: Duration,
    /// When set, a *successful* tune slower than this still counts as
    /// unhealthy (a stalling shard degrades before it fails outright).
    /// `None` disables latency accounting: only hard failures count.
    pub latency_slo: Option<Duration>,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            failure_threshold: 3,
            open_ttl: Duration::from_millis(250),
            max_open_ttl: Duration::from_secs(8),
            latency_slo: None,
        }
    }
}

impl BreakerConfig {
    /// Open TTL after `streak` consecutive trips: `open_ttl * 2^(streak-1)`
    /// capped at `max_open_ttl` (streak is 1-based; 0 is treated as 1).
    fn ttl_for(&self, streak: u32) -> Duration {
        let doublings = streak.saturating_sub(1).min(20);
        self.open_ttl
            .saturating_mul(1u32 << doublings)
            .min(self.max_open_ttl)
    }
}

/// What the breaker says about a new miss on its shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Let the miss through to the real tuner. `probe` marks the one
    /// half-open probe flight whose outcome decides re-close vs re-open.
    Pass {
        /// This miss is the half-open probe.
        probe: bool,
    },
    /// Serve degraded; the shard is not taking tunes until `retry_at`.
    Degrade {
        /// Earliest instant a repair/probe for this miss makes sense.
        retry_at: Instant,
    },
}

/// A breaker state transition worth counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// Tripped into `Open` (from `Closed`, or a failed half-open probe).
    Opened,
    /// Re-closed after a healthy outcome while `Open`/`HalfOpen`.
    Closed,
}

#[derive(Debug)]
struct HealthInner {
    state: BreakerState,
    /// Rolling cold-tune outcomes, `true` == healthy; bounded at
    /// `BreakerConfig::window`.
    window: VecDeque<bool>,
    /// When `Open` expires into `HalfOpen`.
    until: Instant,
    /// Consecutive trips without a re-close (drives the TTL doubling).
    reopen_streak: u32,
    /// When the current half-open probe was let through; a probe older
    /// than `max_open_ttl` is presumed lost and a new one is allowed.
    probe_since: Option<Instant>,
}

/// One shard's health: the rolling outcome window plus the breaker
/// state machine. All methods take `now` explicitly so the transitions
/// unit-test without sleeping.
#[derive(Debug)]
pub struct ShardHealth {
    inner: Mutex<HealthInner>,
}

impl ShardHealth {
    pub(crate) fn new(now: Instant) -> Self {
        ShardHealth {
            inner: Mutex::new(HealthInner {
                state: BreakerState::Closed,
                window: VecDeque::new(),
                until: now,
                reopen_streak: 0,
                probe_since: None,
            }),
        }
    }

    /// Current breaker state (as last transitioned -- an expired `Open`
    /// reports `Open` until a miss actually claims the probe).
    pub(crate) fn state(&self) -> BreakerState {
        self.inner.lock().unwrap().state
    }

    /// Gate one new miss: pass it to the tuner, or degrade it.
    pub(crate) fn gate(&self, cfg: &BreakerConfig, now: Instant) -> Gate {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed => Gate::Pass { probe: false },
            BreakerState::Open => {
                if now >= inner.until {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_since = Some(now);
                    Gate::Pass { probe: true }
                } else {
                    Gate::Degrade {
                        retry_at: inner.until,
                    }
                }
            }
            BreakerState::HalfOpen => {
                let stale = inner
                    .probe_since
                    .is_none_or(|since| now.duration_since(since) >= cfg.max_open_ttl);
                if stale {
                    inner.probe_since = Some(now);
                    Gate::Pass { probe: true }
                } else {
                    Gate::Degrade {
                        retry_at: now + cfg.open_ttl,
                    }
                }
            }
        }
    }

    /// Record one cold-tune outcome; returns a transition to count.
    pub(crate) fn on_outcome(
        &self,
        cfg: &BreakerConfig,
        healthy: bool,
        now: Instant,
    ) -> Option<BreakerEvent> {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed => {
                inner.window.push_back(healthy);
                while inner.window.len() > cfg.window.max(1) {
                    inner.window.pop_front();
                }
                let failures = inner.window.iter().filter(|h| !**h).count() as u32;
                if failures >= cfg.failure_threshold.max(1) {
                    inner.window.clear();
                    inner.state = BreakerState::Open;
                    inner.reopen_streak += 1;
                    inner.until = now + cfg.ttl_for(inner.reopen_streak);
                    inner.probe_since = None;
                    Some(BreakerEvent::Opened)
                } else {
                    None
                }
            }
            BreakerState::Open | BreakerState::HalfOpen => {
                if healthy {
                    inner.state = BreakerState::Closed;
                    inner.window.clear();
                    inner.reopen_streak = 0;
                    inner.probe_since = None;
                    Some(BreakerEvent::Closed)
                } else if inner.state == BreakerState::HalfOpen {
                    // Failed probe: re-open with a doubled TTL.
                    inner.state = BreakerState::Open;
                    inner.reopen_streak += 1;
                    inner.until = now + cfg.ttl_for(inner.reopen_streak);
                    inner.probe_since = None;
                    Some(BreakerEvent::Opened)
                } else {
                    // A straggler flight (started before the trip)
                    // failing while open: extend, don't double-count.
                    inner.until = inner.until.max(now + cfg.ttl_for(inner.reopen_streak));
                    None
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Poison-key quarantine / degraded ledger
// ---------------------------------------------------------------------------

/// Quarantine tuning knobs
/// ([`crate::TuneService::set_quarantine_config`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineConfig {
    /// Delay before the first background repair probe of a poisoned
    /// key; doubles per failed repair.
    pub ttl: Duration,
    /// Ceiling for the exponential repair backoff.
    pub max_ttl: Duration,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            ttl: Duration::from_millis(250),
            max_ttl: Duration::from_secs(8),
        }
    }
}

impl QuarantineConfig {
    fn backoff(&self, level: u32) -> Duration {
        self.ttl
            .saturating_mul(1u32 << level.min(20))
            .min(self.max_ttl)
    }
}

#[derive(Debug)]
struct DegradedEntry {
    /// `true`: retry-budget exhaustion put this key here (submits gate
    /// on it). `false`: breaker-driven degrade (memoization only).
    poisoned: bool,
    /// Failed repair probes so far (drives the backoff doubling).
    level: u32,
    /// Memoized heuristic decision (`Some(None)` == heuristic itself
    /// found no legal config), computed at most once per quarantine.
    choice: Option<Option<TunedChoice>>,
    /// A background repair job is scheduled or running for this key.
    repair_pending: bool,
}

/// The quarantine/degraded ledger: every key currently answered by the
/// heuristic, with its repair bookkeeping. Keys leave the ledger only
/// via [`DegradedLedger::discharge`] (repair published a real tune, or
/// the cache already had one) or [`DegradedLedger::purge`] (its shard
/// left the fleet).
#[derive(Debug, Default)]
pub(crate) struct DegradedLedger {
    map: Mutex<HashMap<TuneKey, DegradedEntry>>,
}

impl DegradedLedger {
    /// Poison `key` after retry exhaustion. Returns `(newly_poisoned,
    /// first repair not-before)`: an already-poisoned key keeps its
    /// backoff level.
    pub(crate) fn poison(
        &self,
        key: TuneKey,
        cfg: &QuarantineConfig,
        now: Instant,
    ) -> (bool, Instant) {
        let mut map = self.map.lock().unwrap();
        let entry = map.entry(key).or_insert(DegradedEntry {
            poisoned: false,
            level: 0,
            choice: None,
            repair_pending: false,
        });
        let newly = !entry.poisoned;
        entry.poisoned = true;
        (newly, now + cfg.backoff(entry.level))
    }

    /// Track a breaker-driven degrade (no-op if `key` is already
    /// ledgered, poisoned or not).
    pub(crate) fn note_degraded(&self, key: TuneKey) {
        self.map
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(DegradedEntry {
                poisoned: false,
                level: 0,
                choice: None,
                repair_pending: false,
            });
    }

    /// Is `key` quarantined (poisoned)? Breaker-driven entries don't
    /// gate submits, only memoize.
    pub(crate) fn is_poisoned(&self, key: &TuneKey) -> bool {
        self.map
            .lock()
            .unwrap()
            .get(key)
            .map(|e| e.poisoned)
            .unwrap_or(false)
    }

    /// The memoized heuristic decision for a ledgered key, computing it
    /// (at most once per quarantine) on first use. Returns the computed
    /// value even if `key` is not ledgered (then without memoizing).
    pub(crate) fn degraded_choice(
        &self,
        key: &TuneKey,
        compute: impl FnOnce() -> Option<TunedChoice>,
    ) -> Option<TunedChoice> {
        let mut map = self.map.lock().unwrap();
        match map.get_mut(key) {
            Some(entry) => {
                if entry.choice.is_none() {
                    entry.choice = Some(compute());
                }
                entry.choice.clone().unwrap()
            }
            None => compute(),
        }
    }

    /// Claim the right to schedule a repair job for `key`; `false` if
    /// one is already pending (or the key is not ledgered).
    pub(crate) fn claim_repair(&self, key: &TuneKey) -> bool {
        let mut map = self.map.lock().unwrap();
        match map.get_mut(key) {
            Some(entry) if !entry.repair_pending => {
                entry.repair_pending = true;
                true
            }
            _ => false,
        }
    }

    /// A repair probe failed: escalate the backoff, keep the claim.
    /// Returns the next probe's not-before.
    pub(crate) fn repair_failed(
        &self,
        key: &TuneKey,
        cfg: &QuarantineConfig,
        now: Instant,
    ) -> Instant {
        let mut map = self.map.lock().unwrap();
        match map.get_mut(key) {
            Some(entry) => {
                entry.level = entry.level.saturating_add(1);
                now + cfg.backoff(entry.level)
            }
            None => now + cfg.ttl,
        }
    }

    /// Remove `key` from the ledger (an authoritative decision now
    /// backs it). Returns `true` if it was ledgered.
    pub(crate) fn discharge(&self, key: &TuneKey) -> bool {
        self.map.lock().unwrap().remove(key).is_some()
    }

    /// Drop every entry whose key matches `pred` (shard removal /
    /// replacement: the ledger must not outlive the tuner it indicts).
    pub(crate) fn purge(&self, pred: impl Fn(&TuneKey) -> bool) {
        self.map.lock().unwrap().retain(|key, _| !pred(key));
    }

    /// Poisoned keys currently quarantined.
    pub(crate) fn poisoned_count(&self) -> usize {
        self.map
            .lock()
            .unwrap()
            .values()
            .filter(|e| e.poisoned)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isaac_device::DType;
    use isaac_gen::shapes::GemmShape;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            failure_threshold: 2,
            open_ttl: Duration::from_millis(100),
            max_open_ttl: Duration::from_secs(2),
            latency_slo: None,
        }
    }

    fn key(m: u32) -> TuneKey {
        TuneKey::gemm(&GemmShape::new(m, 64, 64, "N", "T", DType::F32))
    }

    #[test]
    fn breaker_trips_after_threshold_failures_in_window() {
        let t0 = Instant::now();
        let h = ShardHealth::new(t0);
        assert_eq!(h.on_outcome(&cfg(), false, t0), None);
        assert_eq!(h.on_outcome(&cfg(), true, t0), None);
        assert_eq!(h.on_outcome(&cfg(), false, t0), Some(BreakerEvent::Opened));
        assert_eq!(h.state(), BreakerState::Open);
        // While open (TTL not expired) every miss degrades.
        assert!(matches!(h.gate(&cfg(), t0), Gate::Degrade { .. }));
    }

    #[test]
    fn window_is_rolling_old_failures_age_out() {
        let t0 = Instant::now();
        let h = ShardHealth::new(t0);
        h.on_outcome(&cfg(), false, t0);
        // Three healthy outcomes push the failure out of the window=4.
        for _ in 0..3 {
            h.on_outcome(&cfg(), true, t0);
        }
        assert_eq!(h.on_outcome(&cfg(), false, t0), None);
        assert_eq!(h.state(), BreakerState::Closed);
    }

    #[test]
    fn open_expires_to_one_halfopen_probe_then_recloses_on_success() {
        let t0 = Instant::now();
        let c = cfg();
        let h = ShardHealth::new(t0);
        h.on_outcome(&c, false, t0);
        h.on_outcome(&c, false, t0);
        assert_eq!(h.state(), BreakerState::Open);

        let after = t0 + c.open_ttl;
        // First miss past the TTL is the probe; the next one degrades.
        assert_eq!(h.gate(&c, after), Gate::Pass { probe: true });
        assert_eq!(h.state(), BreakerState::HalfOpen);
        assert!(matches!(h.gate(&c, after), Gate::Degrade { .. }));

        assert_eq!(h.on_outcome(&c, true, after), Some(BreakerEvent::Closed));
        assert_eq!(h.state(), BreakerState::Closed);
        assert_eq!(h.gate(&c, after), Gate::Pass { probe: false });
    }

    #[test]
    fn failed_probe_reopens_with_doubled_ttl() {
        let t0 = Instant::now();
        let c = cfg();
        let h = ShardHealth::new(t0);
        h.on_outcome(&c, false, t0);
        h.on_outcome(&c, false, t0);
        let after = t0 + c.open_ttl;
        assert_eq!(h.gate(&c, after), Gate::Pass { probe: true });
        assert_eq!(h.on_outcome(&c, false, after), Some(BreakerEvent::Opened));
        // Second open TTL is doubled: one open_ttl past `after` is
        // still inside it.
        assert!(matches!(
            h.gate(&c, after + c.open_ttl),
            Gate::Degrade { .. }
        ));
        // ...but two are not.
        assert_eq!(
            h.gate(&c, after + c.open_ttl * 2),
            Gate::Pass { probe: true }
        );
    }

    #[test]
    fn ttl_backoff_is_capped() {
        let c = cfg();
        assert_eq!(c.ttl_for(1), c.open_ttl);
        assert_eq!(c.ttl_for(2), c.open_ttl * 2);
        assert_eq!(c.ttl_for(60), c.max_open_ttl);
    }

    #[test]
    fn slow_success_counts_unhealthy_only_under_an_slo() {
        // The SLO comparison itself lives in service.rs (it has the
        // measured latency); here we pin the config default: no SLO.
        assert_eq!(BreakerConfig::default().latency_slo, None);
    }

    #[test]
    fn ledger_poison_memoize_discharge_roundtrip() {
        let q = QuarantineConfig {
            ttl: Duration::from_millis(10),
            max_ttl: Duration::from_millis(80),
        };
        let ledger = DegradedLedger::default();
        let now = Instant::now();

        let (newly, first) = ledger.poison(key(1), &q, now);
        assert!(newly);
        assert_eq!(first, now + q.ttl);
        assert!(ledger.is_poisoned(&key(1)));
        let (again, _) = ledger.poison(key(1), &q, now);
        assert!(!again);

        // Heuristic computed exactly once per quarantine.
        let mut calls = 0;
        let c1 = ledger.degraded_choice(&key(1), || {
            calls += 1;
            None
        });
        let c2 = ledger.degraded_choice(&key(1), || {
            calls += 1;
            None
        });
        assert_eq!((c1, c2, calls), (None, None, 1));

        // One repair claim at a time; failures escalate the backoff.
        assert!(ledger.claim_repair(&key(1)));
        assert!(!ledger.claim_repair(&key(1)));
        assert_eq!(ledger.repair_failed(&key(1), &q, now), now + q.ttl * 2);
        assert_eq!(ledger.repair_failed(&key(1), &q, now), now + q.ttl * 4);
        // Backoff caps at max_ttl.
        for _ in 0..10 {
            ledger.repair_failed(&key(1), &q, now);
        }
        assert_eq!(ledger.repair_failed(&key(1), &q, now), now + q.max_ttl);

        assert!(ledger.discharge(&key(1)));
        assert!(!ledger.discharge(&key(1)));
        assert!(!ledger.is_poisoned(&key(1)));
    }

    #[test]
    fn breaker_entries_memoize_but_do_not_gate() {
        let ledger = DegradedLedger::default();
        ledger.note_degraded(key(2));
        assert!(!ledger.is_poisoned(&key(2)));
        assert_eq!(ledger.poisoned_count(), 0);
        assert!(ledger.claim_repair(&key(2)));
        // Unledgered keys can't claim repairs.
        assert!(!ledger.claim_repair(&key(3)));
    }

    #[test]
    fn purge_drops_matching_keys() {
        let q = QuarantineConfig::default();
        let ledger = DegradedLedger::default();
        let now = Instant::now();
        ledger.poison(key(4).on_device(0), &q, now);
        ledger.poison(key(4).on_device(1), &q, now);
        ledger.purge(|k| k.device == 0);
        assert!(!ledger.is_poisoned(&key(4).on_device(0)));
        assert!(ledger.is_poisoned(&key(4).on_device(1)));
    }
}
