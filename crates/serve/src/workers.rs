//! The miss queue and its worker pool.
//!
//! [`crate::TuneService::submit`] never tunes on the caller's thread:
//! a miss that wins its single-flight enqueues a [`Job`] here, and a
//! small pool of worker threads drains the queue, runs the cold tunes
//! (each of which still fans out internally through the rayon shim) and
//! fans the results back to every registered ticket. The pool is sized
//! from `rayon::current_num_threads()` by default, so `RAYON_NUM_THREADS`
//! governs both layers of parallelism.
//!
//! The queue supports **pause/resume** (quiesce the tuning backend while
//! hot-swapping shards without rejecting submissions; tickets simply
//! stay pending) and an idempotent **shutdown** that drains queued jobs
//! so `Drop` can fail their flights instead of stranding tickets.
//!
//! Since PR 7 the queue is **two lanes**: the foreground deque holds
//! jobs someone is waiting on, and a strictly-lower-priority background
//! deque holds work nobody is waiting for *right now* -- cold tunes
//! whose waiters have all timed out ([`BgJob::Demoted`]) and predictive
//! warm-starts for keys trending hot on a neighbour shard
//! ([`BgJob::Prewarm`]). Workers only pop the background lane when the
//! foreground lane is empty, so SLO traffic never queues behind
//! best-effort cache warming.

use isaac_core::{IsaacTuner, TuneKey, TunedChoice};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::batch::QueryShape;
use crate::single_flight::FlightId;

/// One queued cold-tune: everything a worker needs, captured at
/// submission time so a later shard swap cannot redirect the work.
pub(crate) struct Job {
    pub key: TuneKey,
    /// The flight this job was enqueued for: completion targets
    /// `(key, flight)`, never the key alone, so a stale job can't
    /// resolve a newer flight that reuses the key.
    pub flight: FlightId,
    pub tuner: Arc<IsaacTuner>,
    pub shape: QueryShape,
    /// When the job (re-)entered the queue, for the queue-latency gauge.
    pub enqueued: Instant,
    /// Tune attempts so far (0 on first submission; bumped on
    /// panic-retry).
    pub attempts: u32,
    /// Set once the job has been shed to the background lane, so a
    /// demoted job runs when popped instead of re-demoting forever.
    pub demoted: bool,
}

/// Best-effort work on the background lane; see the module docs.
pub(crate) enum BgJob {
    /// A foreground cold tune demoted because every live waiter's
    /// deadline passed before a worker reached it. It still completes
    /// its flight and warms the cache -- just without competing with
    /// jobs someone is waiting on.
    Demoted(Box<Job>),
    /// Predictive warm-start: re-benchmark one neighbour decision into
    /// `target`'s cache (the `IsaacTuner::warm_start` rebench path,
    /// orders of magnitude cheaper than a cold tune).
    Prewarm {
        target: Arc<IsaacTuner>,
        source: Box<(TuneKey, TunedChoice)>,
    },
    /// Re-tune one degraded/quarantined key once its backoff expires
    /// and upgrade the cache entry if the tune lands (the self-healing
    /// repair path; see `health.rs`). Not popped before `not_before`:
    /// the lane's scheduling honours the quarantine's exponential
    /// backoff, so a poisoned key never burns retries early.
    Repair {
        key: TuneKey,
        tuner: Arc<IsaacTuner>,
        shape: QueryShape,
        not_before: Instant,
    },
}

impl BgJob {
    /// Earliest instant this job may run (`None` == immediately).
    fn ready_at(&self) -> Option<Instant> {
        match self {
            BgJob::Repair { not_before, .. } => Some(*not_before),
            BgJob::Demoted(_) | BgJob::Prewarm { .. } => None,
        }
    }
}

/// Outcome of one [`MissQueue::pop_until`] call.
pub(crate) enum Popped {
    /// A foreground job to run (boxed: the deadline arm keeps the enum
    /// small).
    Job(Box<Job>),
    /// Background work: the foreground lane was empty.
    Background(BgJob),
    /// The deadline passed with the queue idle -- time for periodic
    /// work (the background snapshotter).
    Deadline,
    /// The queue is shutting down; the worker should exit.
    Shutdown,
}

struct QueueState {
    jobs: VecDeque<Job>,
    background: VecDeque<BgJob>,
    paused: bool,
    shutdown: bool,
}

/// The shared miss queue: a mutex-guarded deque plus a condvar workers
/// sleep on.
pub(crate) struct MissQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl MissQueue {
    pub fn new() -> Self {
        MissQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                background: VecDeque::new(),
                paused: false,
                shutdown: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueue a job and wake one worker. Jobs pushed after shutdown are
    /// dropped (their flights get cancelled by the service teardown).
    pub fn push(&self, job: Job) {
        let mut state = self.state.lock().expect("miss queue poisoned");
        if state.shutdown {
            return;
        }
        state.jobs.push_back(job);
        drop(state);
        self.cv.notify_one();
    }

    /// Enqueue best-effort work on the background lane and wake one
    /// worker. Dropped after shutdown, like [`MissQueue::push`] (a
    /// demoted job's flight is failed by the service teardown; a
    /// prewarm is pure opportunism).
    pub fn push_background(&self, job: BgJob) {
        let mut state = self.state.lock().expect("miss queue poisoned");
        if state.shutdown {
            return;
        }
        state.background.push_back(job);
        drop(state);
        self.cv.notify_one();
    }

    /// Block until a job is available (and the queue is unpaused), the
    /// optional deadline passes, or the queue shuts down. Jobs win over
    /// an already-expired deadline, so a busy queue drains at full
    /// speed and the deadline only fires in the gaps -- which is
    /// exactly what the interval snapshotter wants.
    ///
    /// `deadline_of` is re-evaluated on **every** wakeup, not captured
    /// once: a worker parked before the snapshotter was scheduled (or
    /// rescheduled) picks the new deadline up as soon as
    /// [`MissQueue::kick`] wakes it, instead of sleeping towards a
    /// stale one forever.
    pub fn pop_until(&self, deadline_of: impl Fn() -> Option<Instant>) -> Popped {
        let mut state = self.state.lock().expect("miss queue poisoned");
        loop {
            if state.shutdown {
                return Popped::Shutdown;
            }
            // Earliest not-yet-due background job (repairs waiting out
            // their backoff); folded into the sleep below.
            let mut next_bg: Option<Instant> = None;
            if !state.paused {
                if let Some(job) = state.jobs.pop_front() {
                    return Popped::Job(Box::new(job));
                }
                // Strict priority: background work only runs while the
                // foreground lane is empty. FIFO among *ready* jobs --
                // a deferred repair must not head-of-line-block the
                // prewarms and demoted tunes behind it.
                let now = Instant::now();
                if let Some(pos) = state
                    .background
                    .iter()
                    .position(|bg| bg.ready_at().is_none_or(|t| t <= now))
                {
                    if let Some(bg) = state.background.remove(pos) {
                        return Popped::Background(bg);
                    }
                }
                next_bg = state.background.iter().filter_map(|bg| bg.ready_at()).min();
            }
            let snapshot = deadline_of();
            if let Some(d) = snapshot {
                if Instant::now() >= d {
                    return Popped::Deadline;
                }
            }
            let wake = match (snapshot, next_bg) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            match wake {
                None => state = self.cv.wait(state).expect("miss queue poisoned"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // A deferred background job just came due:
                        // loop around and pop it.
                        continue;
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(state, d - now)
                        .expect("miss queue poisoned");
                    state = guard;
                }
            }
        }
    }

    /// Wake every worker so they re-read their deadlines via
    /// `pop_until`'s `deadline_of` (used when the snapshot schedule
    /// changes).
    pub fn kick(&self) {
        self.cv.notify_all();
    }

    /// Pause or resume job dispatch. Paused workers finish their current
    /// job and then sleep; submissions keep queueing.
    pub fn set_paused(&self, paused: bool) {
        let mut state = self.state.lock().expect("miss queue poisoned");
        state.paused = paused;
        drop(state);
        self.cv.notify_all();
    }

    /// Foreground jobs currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("miss queue poisoned").jobs.len()
    }

    /// Background jobs currently queued.
    pub fn background_depth(&self) -> usize {
        self.state
            .lock()
            .expect("miss queue poisoned")
            .background
            .len()
    }

    /// Flip the queue into shutdown mode and return every undrained
    /// foreground job so the caller can fail their flights. Undrained
    /// background work is simply dropped: a demoted job's waiters are
    /// covered by the same flight-failing sweep, and prewarms and
    /// repairs are best-effort. Idempotent.
    pub fn begin_shutdown(&self) -> Vec<Job> {
        let mut state = self.state.lock().expect("miss queue poisoned");
        state.shutdown = true;
        state.background.clear();
        let drained = state.jobs.drain(..).collect();
        drop(state);
        self.cv.notify_all();
        drained
    }
}

/// Owns the worker threads; joining happens on drop, *after* the
/// service has signalled shutdown (see `TuneService::drop`).
#[derive(Debug)]
pub(crate) struct WorkerPool {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` threads running `work` until the queue shuts
    /// down. `work` is the service core's job loop.
    pub fn spawn(workers: usize, work: impl Fn() + Send + Sync + 'static) -> Self {
        let work = Arc::new(work);
        let handles = (0..workers.max(1))
            .map(|i| {
                let work = Arc::clone(&work);
                std::thread::Builder::new()
                    .name(format!("isaac-serve-worker-{i}"))
                    .spawn(move || work())
                    .expect("spawn serve worker")
            })
            .collect();
        WorkerPool { handles }
    }

    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Join every worker now (idempotent; `drop` joins whatever is
    /// left). The service's `Drop` calls this *before* its final
    /// snapshot flush so no worker can publish a decision after the
    /// flush read the caches.
    pub fn join(&mut self) {
        for handle in self.handles.drain(..) {
            // A worker that panicked outside the catch_unwind perimeter
            // already aborted its flight; don't double-panic the drop.
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.join();
    }
}
