//! Router- and service-level serving counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters bumped on the serving hot path.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub queries: AtomicU64,
    pub batches: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cold_tunes: AtomicU64,
    pub coalesced: AtomicU64,
    pub batch_deduped: AtomicU64,
    pub no_shard: AtomicU64,
    pub failed: AtomicU64,
    pub snapshots: AtomicU64,
    pub snapshot_entries: AtomicU64,
    pub snapshot_errors: AtomicU64,
    pub compactions: AtomicU64,
    pub gc_removed: AtomicU64,
    pub recovery_replayed: AtomicU64,
    pub recovery_torn_records: AtomicU64,
    pub recovery_skipped_records: AtomicU64,
    pub degraded: AtomicU64,
    pub breaker_opens: AtomicU64,
    pub breaker_closes: AtomicU64,
    pub quarantines: AtomicU64,
    pub repair_upgrades: AtomicU64,
}

/// Relaxed add on a serving counter.
pub(crate) fn bump(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

impl Counters {
    pub fn snapshot(&self) -> RouterStats {
        RouterStats {
            queries: self.queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cold_tunes: self.cold_tunes.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            batch_deduped: self.batch_deduped.load(Ordering::Relaxed),
            no_shard: self.no_shard.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            snapshot_entries: self.snapshot_entries.load(Ordering::Relaxed),
            snapshot_errors: self.snapshot_errors.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            gc_removed: self.gc_removed.load(Ordering::Relaxed),
            recovery_replayed: self.recovery_replayed.load(Ordering::Relaxed),
            recovery_torn_records: self.recovery_torn_records.load(Ordering::Relaxed),
            recovery_skipped_records: self.recovery_skipped_records.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            breaker_opens: self.breaker_opens.load(Ordering::Relaxed),
            breaker_closes: self.breaker_closes.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            repair_upgrades: self.repair_upgrades.load(Ordering::Relaxed),
            // Read live from the per-shard journal writers by
            // `TuneService::stats`; zero through any other entry point.
            wal_appends: 0,
            wal_bytes: 0,
            wal_append_errors: 0,
        }
    }
}

/// A snapshot of the serving counters ([`crate::TuneService::stats`],
/// mirrored by the deprecated [`crate::TunerRouter::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Queries submitted (single and batched).
    pub queries: u64,
    /// `submit_batch` calls.
    pub batches: u64,
    /// Queries answered from a shard's decision cache.
    pub cache_hits: u64,
    /// Cold tunes actually run.
    pub cold_tunes: u64,
    /// Queries coalesced onto a concurrent cold tune (single-flight
    /// joins).
    pub coalesced: u64,
    /// Queries absorbed by in-batch deduplication.
    pub batch_deduped: u64,
    /// Queries addressed to an unregistered device/operation.
    pub no_shard: u64,
    /// Tickets failed without a decision: their shard was removed or
    /// replaced while the query was in flight, or every holder of the
    /// key's tickets dropped before the job started (the flight is
    /// cancelled and its already-dead tickets resolve as failed).
    /// Retry-budget exhaustion no longer lands here -- it quarantines
    /// the key and serves [`crate::Served::Degraded`].
    pub failed: u64,
    /// Background snapshots completed by the interval snapshotter
    /// (including the final snapshot-on-shutdown flush). Each snapshot
    /// persists only *dirty* shards, so an idle service stops writing.
    pub snapshots: u64,
    /// Decisions persisted across all background snapshots (the
    /// cumulative [`crate::SnapshotReport::entries`]).
    pub snapshot_entries: u64,
    /// Background snapshot attempts that failed with an I/O error (the
    /// shards stay dirty and are retried next interval).
    pub snapshot_errors: u64,
    /// Shard compactions completed in durability mode: WAL folded into
    /// the base cache file and truncated
    /// ([`crate::TuneService::enable_durability`]).
    pub compactions: u64,
    /// Stale persistence files deleted: orphans and crashed-compaction
    /// leftovers swept by compaction, plus the files of removed or
    /// replaced shards.
    pub gc_removed: u64,
    /// WAL records replayed by [`crate::TuneService::recover_all`].
    pub recovery_replayed: u64,
    /// Torn or corrupt trailing WAL records truncated (and counted,
    /// never replayed) during recovery.
    pub recovery_torn_records: u64,
    /// Malformed or wrong-operation entries skipped during recovery --
    /// a flaky disk surfaces here instead of as silent cache shrinkage.
    pub recovery_skipped_records: u64,
    /// Queries answered [`crate::Served::Degraded`]: the model-free
    /// heuristic stood in because the shard's breaker was open, the key
    /// was quarantined, or a flight exhausted its retry budget. Zero in
    /// steady state (`check_bench.sh` guards the no-fault bench run).
    pub degraded: u64,
    /// Circuit-breaker trips into `Open` (including failed half-open
    /// probes re-opening).
    pub breaker_opens: u64,
    /// Breakers re-closed after a healthy outcome.
    pub breaker_closes: u64,
    /// Keys newly quarantined after exhausting their retry budget.
    pub quarantines: u64,
    /// Degraded/quarantined keys upgraded to an authoritative cache
    /// entry by a background repair tune.
    pub repair_upgrades: u64,
    /// WAL records appended by the shard journals (durability mode).
    pub wal_appends: u64,
    /// Bytes those appends wrote -- the durability cost per interval,
    /// versus rewriting whole cache files.
    pub wal_bytes: u64,
    /// Journal appends that failed with an I/O error. The publish
    /// itself never fails: the decision stays served from memory and a
    /// later compaction persists it.
    pub wal_append_errors: u64,
}

impl RouterStats {
    /// Fraction of all queries that did *not* need their own resolution:
    /// in-batch duplicates plus single-flight joins.
    pub fn dedup_ratio(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.batch_deduped + self.coalesced) as f64 / self.queries as f64
        }
    }
}

/// A snapshot of the async front door's queue and ticket gauges
/// ([`crate::TuneService::service_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Submitted misses whose tickets have not resolved yet.
    pub open_tickets: u64,
    /// High-water mark of `open_tickets` -- the most in-flight misses
    /// the service has multiplexed at once.
    pub peak_open_tickets: u64,
    /// Jobs waiting in the miss queue right now.
    pub queue_depth: u64,
    /// Jobs the worker pool has completed (cold tunes plus leader-side
    /// cache re-peek hits).
    pub jobs_run: u64,
    /// Jobs dropped because their flight was cancelled (shard removal /
    /// replacement / shutdown) before a worker picked them up.
    pub jobs_cancelled: u64,
    /// Jobs re-queued after a tune panicked (see
    /// [`crate::FlightStats::leader_panics`]).
    pub tune_retries: u64,
    /// Flights that spent their whole [`crate::RetryPolicy`] attempt
    /// budget -- distinct from the per-attempt panic count in
    /// [`crate::FlightStats::leader_panics`]. An exhausted flight
    /// quarantines its key and resolves [`crate::Served::Degraded`].
    pub retry_exhausted: u64,
    /// Tickets that resolved [`crate::Served::TimedOut`]: their
    /// deadline expired before the flight landed. The flight itself
    /// keeps running for its other waiters.
    pub timed_out: u64,
    /// Total seconds jobs spent queued before a worker picked them up.
    pub queue_wait_s_total: f64,
    /// Misses refused by per-tenant admission control
    /// ([`crate::Served::Rejected`]). Rejected submits never charge the
    /// queue or the single-flight table.
    pub rejected: u64,
    /// Foreground jobs shed to the background lane because every live
    /// waiter's deadline had already passed when a worker reached them.
    /// Shed jobs still run (and warm the cache) -- just behind all
    /// foreground work.
    pub shed: u64,
    /// Best-effort jobs (demoted tunes + prewarms) waiting in the
    /// background lane right now.
    pub background_depth: u64,
    /// Cache entries seeded by predictive warm-starts
    /// ([`crate::TuneService::prewarm_hot`]).
    pub prewarmed: u64,
    /// Prewarm jobs processed, whether or not they seeded anything (a
    /// stale-shard or already-cached prewarm counts here but not in
    /// `prewarmed`).
    pub prewarm_jobs: u64,
    /// Background repair jobs processed: re-tunes of degraded or
    /// quarantined keys, whether or not they upgraded anything (an
    /// upgrade also counts in [`RouterStats::repair_upgrades`]).
    pub repair_jobs: u64,
    /// Cache hits summed over every registered shard's segmented
    /// decision cache. Unlike [`RouterStats::cache_hits`] (the front
    /// door's count of queries *served* from cache), this aggregates
    /// the caches' own striped per-segment counters, so it also sees
    /// leader re-peeks, prewarm probes and direct tuner traffic. Each
    /// underlying stripe is monotonic; a mid-traffic sum can lag the
    /// true total but never exceeds it, so consecutive
    /// [`ServiceStats::snapshot`] reads never go backwards.
    pub shard_cache_hits: u64,
    /// Cache misses summed over every registered shard's segmented
    /// decision cache (same aggregation and monotonicity guarantees as
    /// [`ServiceStats::shard_cache_hits`]).
    pub shard_cache_misses: u64,
}

impl ServiceStats {
    /// Mean queue latency per executed job (0 when nothing ran).
    pub fn avg_queue_wait_s(&self) -> f64 {
        if self.jobs_run == 0 {
            0.0
        } else {
            self.queue_wait_s_total / self.jobs_run as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_ratio_counts_joins_and_batch_dupes() {
        let s = RouterStats {
            queries: 10,
            batch_deduped: 3,
            coalesced: 2,
            ..Default::default()
        };
        assert!((s.dedup_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(RouterStats::default().dedup_ratio(), 0.0);
    }

    #[test]
    fn avg_queue_wait_handles_idle_pools() {
        assert_eq!(ServiceStats::default().avg_queue_wait_s(), 0.0);
        let s = ServiceStats {
            jobs_run: 4,
            queue_wait_s_total: 2.0,
            ..Default::default()
        };
        assert!((s.avg_queue_wait_s() - 0.5).abs() < 1e-12);
    }
}
