//! The sharded serving front door.
//!
//! A [`TunerRouter`] owns one shard per device ordinal, each holding the
//! trained [`IsaacTuner`]s (GEMM and/or CONV) for that device. Queries
//! enter through [`TunerRouter::submit`] / [`TunerRouter::submit_batch`]
//! and resolve in three tiers:
//!
//! 1. **cache** -- the shard's [`TuneCache`] answers repeats in O(1)
//!    under a shared lock;
//! 2. **single-flight** -- concurrent misses for the same [`TuneKey`]
//!    coalesce: one caller runs the cold tune, the rest block on its
//!    result ([`crate::single_flight`]);
//! 3. **cold tune** -- the winner runs the exhaustive-search engine and
//!    publishes into the cache.
//!
//! Batches are additionally deduplicated *before* dispatch
//! ([`crate::batch::plan`]): duplicate keys inside one batch cost a
//! single resolution, and the unique keys fan out across cores.
//!
//! New shards can be **warm-started** from a neighbour
//! ([`TunerRouter::warm_start`]): the neighbour's best decisions are
//! re-benchmarked on the new device (one measurement each) instead of
//! cold-tuned (an exhaustive model search each).

use crate::batch::{plan, Decision, Query, QueryShape, Served};
use crate::single_flight::{FlightStats, Role, SingleFlight};
use crate::stats::{bump, Counters, RouterStats};
use isaac_core::{IsaacTuner, OpKind, TuneKey, TunedChoice, WarmStartReport};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The tuners of one device.
#[derive(Debug, Default)]
struct Shard {
    gemm: Option<Arc<IsaacTuner>>,
    conv: Option<Arc<IsaacTuner>>,
}

impl Shard {
    fn tuner(&self, op: OpKind) -> Option<&Arc<IsaacTuner>> {
        match op {
            OpKind::Gemm => self.gemm.as_ref(),
            OpKind::Conv => self.conv.as_ref(),
        }
    }
}

/// One front door over per-device tuner shards; see the module docs.
///
/// Flight values carry `(choice, was_cold)`: a leader that finds the
/// cache populated on entry (it raced a previous flight's completion)
/// reports `was_cold = false` so the stats stay truthful.
#[derive(Debug, Default)]
pub struct TunerRouter {
    shards: BTreeMap<u16, Shard>,
    flights: SingleFlight<TuneKey, (Option<TunedChoice>, bool)>,
    counters: Counters,
}

impl TunerRouter {
    /// An empty router; add shards with [`TunerRouter::add_shard`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tuner as the shard for `device` (slotted by the
    /// tuner's operation kind, replacing any previous tuner for that
    /// slot). The tuner's cache keys are rebound to the shard's device
    /// ordinal; the returned `Arc` can be kept for direct access.
    pub fn add_shard(&mut self, device: u16, mut tuner: IsaacTuner) -> Arc<IsaacTuner> {
        tuner.set_device_id(device);
        let tuner = Arc::new(tuner);
        let shard = self.shards.entry(device).or_default();
        match tuner.kind() {
            OpKind::Gemm => shard.gemm = Some(Arc::clone(&tuner)),
            OpKind::Conv => shard.conv = Some(Arc::clone(&tuner)),
        }
        tuner
    }

    /// The tuner serving `(device, op)`, if registered.
    pub fn shard_tuner(&self, device: u16, op: OpKind) -> Option<&Arc<IsaacTuner>> {
        self.shards.get(&device)?.tuner(op)
    }

    /// Registered device ordinals, ascending.
    pub fn devices(&self) -> Vec<u16> {
        self.shards.keys().copied().collect()
    }

    /// Resolve one query through cache -> single-flight -> cold tune.
    pub fn submit(&self, query: &Query) -> Decision {
        bump(&self.counters.queries, 1);
        self.resolve(query)
    }

    /// Resolve a batch. Duplicate keys inside the batch are resolved
    /// once and fanned back out. Cache hits and shard misses are served
    /// inline (a fan-out would cost more than the ~100ns lookups it
    /// parallelizes); only the cold uniques are dispatched in parallel.
    /// Decisions come back in query order.
    pub fn submit_batch(&self, queries: &[Query]) -> Vec<Decision> {
        bump(&self.counters.queries, queries.len() as u64);
        bump(&self.counters.batches, 1);
        let plan = plan(queries);
        bump(&self.counters.batch_deduped, plan.deduped() as u64);
        let mut resolved: Vec<Option<Decision>> = plan
            .uniques
            .iter()
            .zip(&plan.keys)
            .map(|(&qi, key)| self.fast_path(&queries[qi], key))
            .collect();
        let cold: Vec<usize> = (0..resolved.len())
            .filter(|&slot| resolved[slot].is_none())
            .collect();
        if !cold.is_empty() {
            let tuned: Vec<Decision> = cold
                .par_iter()
                .map(|&slot| self.cold_path(&queries[plan.uniques[slot]], &plan.keys[slot]))
                .collect();
            for (slot, decision) in cold.into_iter().zip(tuned) {
                resolved[slot] = Some(decision);
            }
        }
        plan.slot_of
            .iter()
            .enumerate()
            .map(|(i, &slot)| {
                let decision = resolved[slot].clone().expect("all uniques resolved");
                // A duplicate of a cold query did not run the tune itself
                // -- it coalesced on the in-batch resolution. Cache and
                // NoShard outcomes read truthfully for duplicates as-is.
                if plan.uniques[slot] != i && decision.served == Served::Tuned {
                    Decision {
                        served: Served::Coalesced,
                        ..decision
                    }
                } else {
                    decision
                }
            })
            .collect()
    }

    fn resolve(&self, query: &Query) -> Decision {
        let key = query.key();
        match self.fast_path(query, &key) {
            Some(decision) => decision,
            None => self.cold_path(query, &key),
        }
    }

    /// Serve a query from the shard map and cache alone: `Some` for a
    /// counted cache hit or a missing shard, `None` for a counted miss
    /// that needs [`TunerRouter::cold_path`]. `key` is the query's
    /// [`Query::key`], derived once by the caller.
    fn fast_path(&self, query: &Query, key: &TuneKey) -> Option<Decision> {
        let Some(tuner) = self.shard_tuner(query.device, query.op()) else {
            bump(&self.counters.no_shard, 1);
            return Some(Decision {
                choice: None,
                served: Served::NoShard,
            });
        };
        match tuner.cache().get(key) {
            Some(hit) => {
                bump(&self.counters.cache_hits, 1);
                Some(Decision {
                    choice: Some(hit),
                    served: Served::Cache,
                })
            }
            None => None,
        }
    }

    /// Coalesce with (or lead) the flight for a key whose miss has
    /// already been counted by [`TunerRouter::fast_path`].
    fn cold_path(&self, query: &Query, key: &TuneKey) -> Decision {
        let key = *key;
        let tuner = self
            .shard_tuner(query.device, query.op())
            .expect("cold_path follows a fast_path miss, so the shard exists");
        let ((choice, was_cold), role) = self.flights.run(key, || {
            // Re-check under flight leadership: a thread that lost the
            // race between its cache miss and the table lookup would
            // otherwise lead a *second* flight for a key the previous
            // leader has already published -- the uncounted peek keeps
            // "exactly one cold tune per key" true across that window.
            if let Some(hit) = tuner.cache().peek(&key) {
                return (Some(hit), false);
            }
            // The `_cold` entry points skip the tuner's own (already
            // counted) cache lookup. A `None` outcome (no legal
            // configuration) is not cached: in the current tuning space
            // every shape has legal configurations, so `None` signals an
            // engine failure, not a steady state worth a tombstone.
            let choice = match query.shape {
                QueryShape::Gemm(ref s) => tuner.tune_gemm_cold(s),
                QueryShape::Conv(ref s) => tuner.tune_conv_cold(s),
            };
            (choice, true)
        });
        let served = match role {
            Role::Led if was_cold => {
                bump(&self.counters.cold_tunes, 1);
                Served::Tuned
            }
            Role::Led => {
                bump(&self.counters.cache_hits, 1);
                Served::Cache
            }
            Role::Joined => {
                bump(&self.counters.coalesced, 1);
                Served::Coalesced
            }
        };
        Decision { choice, served }
    }

    /// Seed the `(target, op)` shard's cache from the `(source, op)`
    /// shard's decisions: the source's `top_k` best entries are
    /// re-benchmarked on the target device (one measurement each)
    /// instead of cold-tuned. Returns `None` if either shard is missing.
    pub fn warm_start(
        &self,
        target: u16,
        source: u16,
        op: OpKind,
        top_k: usize,
    ) -> Option<WarmStartReport> {
        let src = self.shard_tuner(source, op)?;
        let dst = self.shard_tuner(target, op)?;
        Some(dst.warm_start(&src.cache().entries(), top_k))
    }

    /// Serving counters.
    pub fn stats(&self) -> RouterStats {
        self.counters.snapshot()
    }

    /// Single-flight lead/join counters.
    pub fn flight_stats(&self) -> FlightStats {
        self.flights.stats()
    }
}
