//! The blocking compatibility facade over [`TuneService`].
//!
//! `TunerRouter` was the PR 2 front door: `submit`/`submit_batch`
//! blocked the calling thread until every decision landed, parking one
//! OS thread per in-flight miss on a condvar. PR 4 replaced that model
//! with the ticket-based [`TuneService`]; this type survives as a thin
//! wrapper so existing callers keep compiling while they migrate.
//!
//! **Deprecated:** new code should hold a [`TuneService`] and consume
//! [`crate::TuneTicket`]s ([`TunerRouter::service`] exposes the inner
//! service for incremental migration). The wrappers here are exactly
//! `service.submit(q).wait()` -- same counters, same single-flight
//! invariant, same decisions -- so migration is mechanical; see
//! `crates/serve/README.md` for the mapping table. The `#[deprecated]`
//! attribute is intentionally *not* applied: the PR 2 test suite (which
//! pins the blocking semantics) compiles against this API, and the
//! workspace lints deny warnings.

use crate::batch::{Decision, Query};
use crate::service::TuneService;
use crate::single_flight::FlightStats;
use crate::stats::RouterStats;
use isaac_core::{IsaacTuner, OpKind, WarmStartReport};
use std::sync::Arc;

/// Blocking front door over per-device tuner shards; a compatibility
/// wrapper around [`TuneService`] (see the module docs).
#[derive(Debug, Default)]
pub struct TunerRouter {
    service: TuneService,
}

impl TunerRouter {
    /// An empty router; add shards with [`TunerRouter::add_shard`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The async service this router wraps, for incremental migration
    /// (tickets, snapshot/restore, shard hot-swap, pause/resume).
    pub fn service(&self) -> &TuneService {
        &self.service
    }

    /// Register a tuner as the shard for `device` (slotted by the
    /// tuner's operation kind, replacing any previous tuner for that
    /// slot). The tuner's cache keys are rebound to the shard's device
    /// ordinal; the returned `Arc` can be kept for direct access.
    pub fn add_shard(&mut self, device: u16, tuner: IsaacTuner) -> Arc<IsaacTuner> {
        self.service.add_shard(device, tuner)
    }

    /// The tuner serving `(device, op)`, if registered.
    pub fn shard_tuner(&self, device: u16, op: OpKind) -> Option<Arc<IsaacTuner>> {
        self.service.shard_tuner(device, op)
    }

    /// Registered device ordinals, ascending.
    pub fn devices(&self) -> Vec<u16> {
        self.service.devices()
    }

    /// Resolve one query, blocking until the decision lands.
    ///
    /// Deprecated blocking wrapper: exactly
    /// [`TuneService::submit`]`.wait()`.
    pub fn submit(&self, query: &Query) -> Decision {
        self.service.submit(query).wait()
    }

    /// Resolve a batch, blocking until every decision lands. Duplicate
    /// keys inside the batch are resolved once and fanned back out;
    /// decisions come back in query order.
    ///
    /// Deprecated blocking wrapper: exactly
    /// [`TuneService::submit_batch`] followed by a `wait` per ticket.
    pub fn submit_batch(&self, queries: &[Query]) -> Vec<Decision> {
        self.service
            .submit_batch(queries)
            .iter()
            .map(|ticket| ticket.wait())
            .collect()
    }

    /// Seed the `(target, op)` shard's cache from the `(source, op)`
    /// shard's decisions: the source's `top_k` best entries are
    /// re-benchmarked on the target device (one measurement each)
    /// instead of cold-tuned. Returns `None` if either shard is missing.
    pub fn warm_start(
        &self,
        target: u16,
        source: u16,
        op: OpKind,
        top_k: usize,
    ) -> Option<WarmStartReport> {
        self.service.warm_start(target, source, op, top_k)
    }

    /// Serving counters.
    pub fn stats(&self) -> RouterStats {
        self.service.stats()
    }

    /// Single-flight lead/join/panic counters.
    pub fn flight_stats(&self) -> FlightStats {
        self.service.flight_stats()
    }
}
