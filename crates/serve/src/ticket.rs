//! Pollable tuning tickets: the non-blocking half of the serving API.
//!
//! [`crate::TuneService::submit`] returns a [`TuneTicket`] immediately:
//! cache hits (and refusals) come back pre-resolved, misses resolve when
//! the worker pool completes (or fails) the key's single-flight. A
//! ticket can be consumed three ways, freely mixed:
//!
//! * [`TuneTicket::try_get`] -- non-blocking peek;
//! * [`TuneTicket::wait`] -- block the calling thread (what the
//!   deprecated [`crate::TunerRouter`] wrappers do);
//! * [`TuneTicket::poll_decision`] / the [`Future`] impl -- register a
//!   [`std::task::Waker`] and get woken on completion, so one OS thread
//!   can multiplex arbitrarily many in-flight queries, and a ticket can
//!   back a real `Future` under any executor without this crate taking
//!   an executor dependency.
//!
//! Dropping an unresolved ticket is safe and cheap: the flight it
//! joined keeps running for the other waiters (and still publishes into
//! the decision cache), the ticket's registered waker is discarded
//! *without being woken*, and the shared completion cell is freed once
//! the flight fans out.

use crate::batch::Decision;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

/// Open-ticket gauge shared with the service: how many submitted misses
/// have not resolved yet, plus the high-water mark. `open` increments at
/// submission, decrements exactly once when the ticket's cell resolves
/// (even if the user-facing handle was dropped earlier).
#[derive(Debug, Default)]
pub(crate) struct OpenTickets {
    open: AtomicU64,
    peak: AtomicU64,
}

impl OpenTickets {
    fn opened(&self) {
        let now = self.open.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn resolved(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
    }

    pub fn open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

struct CellState {
    decision: Option<Decision>,
    waker: Option<Waker>,
}

/// The shared completion slot behind a pending ticket: the flight's
/// waiter callback resolves it, the ticket handle polls/waits on it.
pub(crate) struct TicketCell {
    state: Mutex<CellState>,
    cv: Condvar,
    gauge: Arc<OpenTickets>,
}

impl TicketCell {
    pub fn new(gauge: Arc<OpenTickets>) -> Self {
        gauge.opened();
        TicketCell {
            state: Mutex::new(CellState {
                decision: None,
                waker: None,
            }),
            cv: Condvar::new(),
            gauge,
        }
    }

    /// Publish the decision: first resolution wins, later calls are
    /// no-ops. The open-ticket gauge is decremented *before* the
    /// decision becomes observable (a waiter woken by this resolution
    /// must not read a stale gauge); the registered waker fires after
    /// the state lock is released.
    pub fn resolve(&self, decision: Decision) {
        let waker = {
            let mut state = self.state.lock().expect("ticket poisoned");
            if state.decision.is_some() {
                return;
            }
            self.gauge.resolved();
            state.decision = Some(decision);
            self.cv.notify_all();
            state.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }
}

enum Repr {
    /// Resolved at submission (cache hit, missing shard): no shared
    /// state, no allocation beyond the decision itself -- the cached-hit
    /// path stays O(1) and lock-free at the ticket layer.
    Ready(Decision),
    Pending(Arc<TicketCell>),
}

/// A claim on one tuning decision; see the module docs.
///
/// The ticket is single-owner (not `Clone`): each submitted query
/// position gets its own ticket, and concurrent submissions for the
/// same key coalesce *behind* the tickets in the single-flight table,
/// so N tickets on one contended key still cost exactly one cold tune.
pub struct TuneTicket {
    repr: Repr,
}

impl std::fmt::Debug for TuneTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.repr {
            Repr::Ready(d) => f.debug_struct("TuneTicket").field("ready", d).finish(),
            Repr::Pending(_) => f.debug_struct("TuneTicket").field("ready", &false).finish(),
        }
    }
}

impl TuneTicket {
    /// A ticket resolved at submission time.
    pub(crate) fn ready(decision: Decision) -> Self {
        TuneTicket {
            repr: Repr::Ready(decision),
        }
    }

    /// A ticket backed by a shared completion cell.
    pub(crate) fn pending(cell: Arc<TicketCell>) -> Self {
        TuneTicket {
            repr: Repr::Pending(cell),
        }
    }

    /// The decision, if the query has resolved. Never blocks.
    pub fn try_get(&self) -> Option<Decision> {
        match &self.repr {
            Repr::Ready(d) => Some(d.clone()),
            Repr::Pending(cell) => cell.state.lock().expect("ticket poisoned").decision.clone(),
        }
    }

    /// Whether the query has resolved. Never blocks.
    pub fn is_ready(&self) -> bool {
        match &self.repr {
            Repr::Ready(_) => true,
            Repr::Pending(cell) => cell
                .state
                .lock()
                .expect("ticket poisoned")
                .decision
                .is_some(),
        }
    }

    /// Block the calling thread until the decision lands. This is the
    /// migration shim for pre-ticket callers (`submit(q).wait()` is the
    /// old blocking `submit`); new code should poll.
    pub fn wait(&self) -> Decision {
        match &self.repr {
            Repr::Ready(d) => d.clone(),
            Repr::Pending(cell) => {
                let mut state = cell.state.lock().expect("ticket poisoned");
                loop {
                    if let Some(d) = &state.decision {
                        return d.clone();
                    }
                    state = cell.cv.wait(state).expect("ticket poisoned");
                }
            }
        }
    }

    /// Poll for the decision, registering `cx`'s waker to be woken on
    /// completion if it is not ready yet. The waker-compatible core of
    /// the [`Future`] impl, exposed separately so executor-less callers
    /// (a hand-rolled poll loop multiplexing many tickets on one OS
    /// thread) don't need `Pin`.
    pub fn poll_decision(&self, cx: &mut Context<'_>) -> Poll<Decision> {
        match &self.repr {
            Repr::Ready(d) => Poll::Ready(d.clone()),
            Repr::Pending(cell) => {
                let mut state = cell.state.lock().expect("ticket poisoned");
                if let Some(d) = &state.decision {
                    return Poll::Ready(d.clone());
                }
                // Keep one registered waker: the latest poll wins, as
                // futures contract requires.
                match &state.waker {
                    Some(w) if w.will_wake(cx.waker()) => {}
                    _ => state.waker = Some(cx.waker().clone()),
                }
                Poll::Pending
            }
        }
    }
}

impl Future for TuneTicket {
    type Output = Decision;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Decision> {
        self.poll_decision(cx)
    }
}

impl Drop for TuneTicket {
    fn drop(&mut self) {
        // A dropped ticket must not wake a dead task: discard the waker
        // we registered. The flight still resolves the cell (keeping the
        // open-ticket gauge truthful); it just has no one left to wake.
        if let Repr::Pending(cell) = &self.repr {
            cell.state.lock().expect("ticket poisoned").waker = None;
        }
    }
}
