//! Pollable tuning tickets: the non-blocking half of the serving API.
//!
//! [`crate::TuneService::submit`] returns a [`TuneTicket`] immediately:
//! cache hits (and refusals) come back pre-resolved, misses resolve when
//! the worker pool completes (or fails) the key's single-flight. A
//! ticket can be consumed four ways, freely mixed:
//!
//! * [`TuneTicket::try_get`] -- non-blocking peek;
//! * [`TuneTicket::wait`] -- block the calling thread (what the
//!   deprecated [`crate::TunerRouter`] wrappers do);
//! * [`TuneTicket::wait_timeout`] -- block, but give up after a bound:
//!   an expired wait resolves *this* ticket to
//!   [`crate::Served::TimedOut`] without touching the flight, which
//!   keeps running for its other waiters and still publishes into the
//!   decision cache;
//! * [`TuneTicket::poll_decision`] / the [`Future`] impl -- register a
//!   [`std::task::Waker`] and get woken on completion, so one OS thread
//!   can multiplex arbitrarily many in-flight queries, and a ticket can
//!   back a real `Future` under any executor without this crate taking
//!   an executor dependency.
//!
//! ## Deadlines
//!
//! [`crate::TuneService::submit_with`] can bake a deadline into the
//! ticket at submission. The deadline is enforced at every consumption
//! point: `wait` blocks only until the deadline, `try_get` and
//! `poll_decision` resolve the ticket to `TimedOut` when observed past
//! it. (No timer thread exists: a parked `poll`er is not *woken* at the
//! deadline -- executors with timers should combine the future with
//! their own sleep, while `wait`/`wait_timeout` enforce the bound in
//! real time.) Expiry is ticket-local and race-free: if the decision
//! lands concurrently with the expiry, the decision wins and is
//! returned.
//!
//! ## Dropping tickets
//!
//! Dropping an unresolved ticket is safe and cheap: the registered
//! waker is discarded *without being woken* and the shared completion
//! cell is freed once the flight fans out. Dropping matters to the
//! flight, though: when **every** ticket of a not-yet-started flight
//! has been dropped, the flight is cancelled through the
//! `(key, FlightId)` path (counted in
//! [`crate::FlightStats::cancelled`]) and the queued job is dropped by
//! the worker pool instead of tuning for an audience of zero.

use crate::admission::TenantSlot;
use crate::batch::{Decision, Served};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::{Duration, Instant};

/// Open-ticket gauge shared with the service: how many submitted misses
/// have not resolved yet, plus the high-water mark and the deadline
/// expiry counter. `open` increments at submission, decrements exactly
/// once when the ticket's cell resolves (even if the user-facing handle
/// was dropped earlier).
#[derive(Debug, Default)]
pub(crate) struct OpenTickets {
    open: AtomicU64,
    peak: AtomicU64,
    timed_out: AtomicU64,
}

impl OpenTickets {
    fn opened(&self) {
        let now = self.open.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    fn resolved(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
    }

    fn note_timeout(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub fn open(&self) -> u64 {
        self.open.load(Ordering::Relaxed)
    }

    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    pub fn timeouts(&self) -> u64 {
        self.timed_out.load(Ordering::Relaxed)
    }
}

struct CellState {
    decision: Option<Decision>,
    waker: Option<Waker>,
}

/// The shared completion slot behind a pending ticket: the flight's
/// waiter callback resolves it, the ticket handle polls/waits on it.
pub(crate) struct TicketCell {
    state: Mutex<CellState>,
    cv: Condvar,
    gauge: Arc<OpenTickets>,
    /// Admission charge to release when this cell resolves (misses that
    /// went through [`crate::admission::Admission::admit`]).
    tenant: Option<Arc<TenantSlot>>,
}

impl TicketCell {
    pub fn new(gauge: Arc<OpenTickets>, tenant: Option<Arc<TenantSlot>>) -> Self {
        gauge.opened();
        TicketCell {
            state: Mutex::new(CellState {
                decision: None,
                waker: None,
            }),
            cv: Condvar::new(),
            gauge,
            tenant,
        }
    }

    /// Publish the decision: the first resolution wins and returns
    /// `true`; later calls are no-ops returning `false`. The
    /// open-ticket gauge is decremented *before* the decision becomes
    /// observable (a waiter woken by this resolution must not read a
    /// stale gauge); the registered waker fires after the state lock is
    /// released.
    pub fn resolve(&self, decision: Decision) -> bool {
        let waker = {
            let mut state = self.state.lock().expect("ticket poisoned");
            if state.decision.is_some() {
                return false;
            }
            self.gauge.resolved();
            // The tenant's in-flight quota slot frees with the ticket,
            // whatever it resolved to (decision, failure, or expiry).
            if let Some(tenant) = &self.tenant {
                tenant.release();
            }
            state.decision = Some(decision);
            self.cv.notify_all();
            state.waker.take()
        };
        if let Some(waker) = waker {
            waker.wake();
        }
        true
    }

    /// Resolve this cell as timed out (counting the expiry), unless the
    /// real decision won the race -- either way, return what the ticket
    /// is now resolved to.
    fn expire(&self) -> Decision {
        let timed_out = Decision {
            choice: None,
            served: Served::TimedOut,
        };
        if self.resolve(timed_out.clone()) {
            self.gauge.note_timeout();
            if let Some(tenant) = &self.tenant {
                tenant.note_timeout();
            }
            timed_out
        } else {
            self.state
                .lock()
                .expect("ticket poisoned")
                .decision
                .clone()
                .expect("lost the expiry race to a resolution")
        }
    }
}

/// Called at most once when a pending ticket is dropped before its cell
/// resolved; the service uses it to notify the single-flight table of
/// the lost waiter.
pub(crate) type AbandonHook = Box<dyn FnOnce() + Send>;

enum Repr {
    /// Resolved at submission (cache hit, missing shard): no shared
    /// state, no allocation beyond the decision itself -- the cached-hit
    /// path stays O(1) and lock-free at the ticket layer.
    Ready(Decision),
    Pending {
        cell: Arc<TicketCell>,
        /// Instant past which consuming the ticket yields
        /// [`Served::TimedOut`] (from
        /// [`crate::TuneService::submit_with`]).
        deadline: Option<Instant>,
        /// Fired on drop-before-resolution; see the module docs.
        abandon: Option<AbandonHook>,
    },
}

/// A claim on one tuning decision; see the module docs.
///
/// The ticket is single-owner (not `Clone`): each submitted query
/// position gets its own ticket, and concurrent submissions for the
/// same key coalesce *behind* the tickets in the single-flight table,
/// so N tickets on one contended key still cost exactly one cold tune.
pub struct TuneTicket {
    repr: Repr,
}

impl std::fmt::Debug for TuneTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.repr {
            Repr::Ready(d) => f.debug_struct("TuneTicket").field("ready", d).finish(),
            Repr::Pending { deadline, .. } => f
                .debug_struct("TuneTicket")
                .field("ready", &false)
                .field("deadline", deadline)
                .finish(),
        }
    }
}

impl TuneTicket {
    /// A ticket resolved at submission time.
    pub(crate) fn ready(decision: Decision) -> Self {
        TuneTicket {
            repr: Repr::Ready(decision),
        }
    }

    /// A ticket backed by a shared completion cell, optionally bounded
    /// by a deadline, with an optional drop-before-resolution hook.
    pub(crate) fn pending(
        cell: Arc<TicketCell>,
        deadline: Option<Instant>,
        abandon: Option<AbandonHook>,
    ) -> Self {
        TuneTicket {
            repr: Repr::Pending {
                cell,
                deadline,
                abandon,
            },
        }
    }

    /// The decision, if the query has resolved (or its deadline has
    /// expired -- an expired ticket resolves itself to
    /// [`Served::TimedOut`]). Never blocks.
    pub fn try_get(&self) -> Option<Decision> {
        match &self.repr {
            Repr::Ready(d) => Some(d.clone()),
            Repr::Pending { cell, deadline, .. } => {
                let resolved = cell.state.lock().expect("ticket poisoned").decision.clone();
                match resolved {
                    Some(d) => Some(d),
                    None if deadline.is_some_and(|d| Instant::now() >= d) => Some(cell.expire()),
                    None => None,
                }
            }
        }
    }

    /// Whether consuming the ticket would yield a decision right now
    /// (resolved, or past its deadline). Never blocks.
    pub fn is_ready(&self) -> bool {
        match &self.repr {
            Repr::Ready(_) => true,
            Repr::Pending { cell, deadline, .. } => {
                cell.state
                    .lock()
                    .expect("ticket poisoned")
                    .decision
                    .is_some()
                    || deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// Block the calling thread until the decision lands (or the
    /// ticket's baked-in deadline, if any, expires). This is the
    /// migration shim for pre-ticket callers (`submit(q).wait()` is the
    /// old blocking `submit`); new code should poll.
    pub fn wait(&self) -> Decision {
        self.wait_until(match &self.repr {
            Repr::Pending { deadline, .. } => *deadline,
            Repr::Ready(_) => None,
        })
    }

    /// Block until the decision lands or `timeout` elapses, whichever
    /// comes first (a baked-in deadline still applies if it is
    /// sooner). On expiry the ticket resolves to [`Served::TimedOut`]
    /// -- only for *this* ticket: the flight is not poisoned, other
    /// waiters on the same key still receive the tuned decision, and
    /// the decision is still published to the cache when the tune
    /// lands.
    pub fn wait_timeout(&self, timeout: Duration) -> Decision {
        let bound = Instant::now() + timeout;
        self.wait_until(Some(match &self.repr {
            Repr::Pending {
                deadline: Some(d), ..
            } => bound.min(*d),
            _ => bound,
        }))
    }

    fn wait_until(&self, deadline: Option<Instant>) -> Decision {
        match &self.repr {
            Repr::Ready(d) => d.clone(),
            Repr::Pending { cell, .. } => {
                let mut state = cell.state.lock().expect("ticket poisoned");
                loop {
                    if let Some(d) = &state.decision {
                        return d.clone();
                    }
                    match deadline {
                        None => state = cell.cv.wait(state).expect("ticket poisoned"),
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                drop(state);
                                return cell.expire();
                            }
                            let (guard, _) = cell
                                .cv
                                .wait_timeout(state, d - now)
                                .expect("ticket poisoned");
                            state = guard;
                        }
                    }
                }
            }
        }
    }

    /// Poll for the decision, registering `cx`'s waker to be woken on
    /// completion if it is not ready yet. The waker-compatible core of
    /// the [`Future`] impl, exposed separately so executor-less callers
    /// (a hand-rolled poll loop multiplexing many tickets on one OS
    /// thread) don't need `Pin`. A poll past the ticket's baked-in
    /// deadline resolves it to [`Served::TimedOut`] (no timer wakes a
    /// parked poller *at* the deadline; see the module docs).
    pub fn poll_decision(&self, cx: &mut Context<'_>) -> Poll<Decision> {
        match &self.repr {
            Repr::Ready(d) => Poll::Ready(d.clone()),
            Repr::Pending { cell, deadline, .. } => {
                let mut state = cell.state.lock().expect("ticket poisoned");
                if let Some(d) = &state.decision {
                    return Poll::Ready(d.clone());
                }
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    drop(state);
                    return Poll::Ready(cell.expire());
                }
                // Keep one registered waker: the latest poll wins, as
                // futures contract requires.
                match &state.waker {
                    Some(w) if w.will_wake(cx.waker()) => {}
                    _ => state.waker = Some(cx.waker().clone()),
                }
                Poll::Pending
            }
        }
    }
}

impl Future for TuneTicket {
    type Output = Decision;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Decision> {
        self.poll_decision(cx)
    }
}

impl Drop for TuneTicket {
    fn drop(&mut self) {
        // A dropped ticket must not wake a dead task: discard the waker
        // we registered. The flight still resolves the cell (keeping the
        // open-ticket gauge truthful); it just has no one left to wake.
        if let Repr::Pending { cell, abandon, .. } = &mut self.repr {
            let resolved = {
                let mut state = cell.state.lock().expect("ticket poisoned");
                state.waker = None;
                state.decision.is_some()
            };
            // Tell the flight it lost this waiter -- outside the cell
            // lock: the abandonment may cancel the flight, whose
            // fan-out re-enters the cell to resolve it.
            if !resolved {
                if let Some(hook) = abandon.take() {
                    hook();
                }
            }
        }
    }
}
