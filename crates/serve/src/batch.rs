//! Query/decision types of the serving front door, and in-batch
//! deduplication.
//!
//! A [`Query`] names a device shard and an input shape; the router
//! resolves it to a [`Decision`]. [`plan`] computes the dedup structure
//! of a batch: duplicate queries (same [`TuneKey`], i.e. same device,
//! operation, dtype and shape) are resolved once and fanned back out to
//! every position, so a batch with heavy repetition costs one resolution
//! per *unique* key.

use isaac_core::{KeyShape, OpKind, SparseShape, TuneKey, TunedChoice};
use isaac_gen::shapes::{ConvShape, GemmShape};
use std::collections::HashMap;

/// The input of one tuning query: any op family's shape, in the
/// op-agnostic currency the core tuner keys on. The serving layer never
/// matches on the variants -- keys, operation kinds and cold tunes all
/// come from [`KeyShape`]'s own methods and the core's op-family
/// registry, so a new operation flows through untouched.
pub type QueryShape = KeyShape;

/// One tuning query addressed to a device shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Query {
    /// Target device ordinal.
    pub device: u16,
    /// Input shape to tune.
    pub shape: QueryShape,
}

impl Query {
    /// A query for any op family's shape on a device shard.
    pub fn new(device: u16, shape: QueryShape) -> Self {
        Query { device, shape }
    }

    /// A GEMM query for a device shard.
    pub fn gemm(device: u16, shape: GemmShape) -> Self {
        Query::new(device, KeyShape::Gemm(shape))
    }

    /// A CONV query for a device shard.
    pub fn conv(device: u16, shape: ConvShape) -> Self {
        Query::new(device, KeyShape::Conv(shape))
    }

    /// A sparse query for a device shard.
    pub fn sparse(device: u16, shape: SparseShape) -> Self {
        Query::new(device, KeyShape::Sparse(shape))
    }

    /// The cache/flight key this query resolves to.
    pub fn key(&self) -> TuneKey {
        self.shape.key().on_device(self.device)
    }

    /// The operation this query needs a tuner for.
    pub fn op(&self) -> OpKind {
        self.shape.kind()
    }
}

/// How a decision was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Answered from the shard's decision cache.
    Cache,
    /// This query ran the cold tune.
    Tuned,
    /// Coalesced onto a cold tune for the same key run by someone else:
    /// a single-flight join, or an in-batch duplicate of a cold query.
    Coalesced,
    /// No shard is registered for the query's device/operation.
    NoShard,
    /// The query was accepted but never resolved to a decision: its
    /// shard was removed or replaced while the tune was in flight, or
    /// the service shut down. `choice` is always `None`.
    Failed,
    /// Served by the op family's model-free heuristic fallback
    /// ([`isaac_core::IsaacTuner::heuristic_shape`]) because the tuned path is
    /// unhealthy: the shard's circuit breaker is open, the key is
    /// quarantined after repeated tune faults, or this flight exhausted
    /// its retry budget. `choice` carries the heuristic configuration
    /// (zeroed measurement fields) unless no configuration is legal at
    /// all; the decision is *not* published to the cache -- a
    /// background repair job re-tunes the key and upgrades it once the
    /// shard is healthy (see `docs/RESILIENCE.md`).
    Degraded,
    /// The caller's deadline expired before the decision landed
    /// ([`crate::TuneTicket::wait_timeout`], or a deadline baked in via
    /// [`crate::TuneService::submit_with`]). Only *this* ticket gives
    /// up: the flight keeps running for its other waiters and still
    /// publishes into the decision cache. `choice` is always `None`.
    TimedOut,
    /// Admission control refused the miss: the submitting tenant
    /// ([`crate::SubmitOptions::tenant`]) was already at its in-flight
    /// quota. The key's single-flight is untouched -- a within-quota
    /// waiter for the same key still receives the decision -- and the
    /// rejection is counted in [`crate::ServiceStats::rejected`].
    /// `choice` is always `None`.
    Rejected,
}

/// The outcome of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The selected kernel, or `None` if unservable (no shard, or no
    /// legal configuration).
    pub choice: Option<TunedChoice>,
    /// How the answer was produced.
    pub served: Served,
}

/// The dedup structure of a batch: which positions are first occurrences
/// of their key, and which unique resolution each position maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPlan {
    /// Indices into the batch of the first occurrence of each unique
    /// key, in batch order.
    pub uniques: Vec<usize>,
    /// The key of each unique (aligned with `uniques`), so the serving
    /// hot path reuses the keys the dedup pass already derived.
    pub keys: Vec<TuneKey>,
    /// For every batch position, the index into `uniques` that resolves
    /// it.
    pub slot_of: Vec<usize>,
}

impl BatchPlan {
    /// Queries absorbed by in-batch deduplication.
    pub fn deduped(&self) -> usize {
        self.slot_of.len() - self.uniques.len()
    }
}

/// Group a batch by [`TuneKey`]; see [`BatchPlan`].
pub fn plan(queries: &[Query]) -> BatchPlan {
    let mut slot_by_key: HashMap<TuneKey, usize> = HashMap::new();
    let mut uniques = Vec::new();
    let mut keys = Vec::new();
    let mut slot_of = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let key = q.key();
        let slot = *slot_by_key.entry(key).or_insert_with(|| {
            uniques.push(i);
            keys.push(key);
            uniques.len() - 1
        });
        slot_of.push(slot);
    }
    BatchPlan {
        uniques,
        keys,
        slot_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isaac_device::DType;

    fn q(device: u16, m: u32) -> Query {
        Query::gemm(device, GemmShape::new(m, 64, 64, "N", "T", DType::F32))
    }

    #[test]
    fn plan_dedupes_by_key_keeping_first_occurrences() {
        let batch = [q(0, 128), q(0, 256), q(0, 128), q(1, 128), q(0, 256)];
        let plan = plan(&batch);
        assert_eq!(plan.uniques, vec![0, 1, 3], "device 1 is a distinct key");
        assert_eq!(plan.slot_of, vec![0, 1, 0, 2, 1]);
        assert_eq!(plan.deduped(), 2);
    }

    #[test]
    fn plan_of_distinct_queries_is_identity() {
        let batch = [q(0, 1), q(0, 2), q(0, 3)];
        let plan = plan(&batch);
        assert_eq!(plan.uniques, vec![0, 1, 2]);
        assert_eq!(plan.slot_of, vec![0, 1, 2]);
        assert_eq!(plan.deduped(), 0);
    }

    #[test]
    fn plan_of_empty_batch_is_empty() {
        let plan = plan(&[]);
        assert!(plan.uniques.is_empty() && plan.slot_of.is_empty());
        assert_eq!(plan.deduped(), 0);
    }

    #[test]
    fn gemm_and_conv_queries_key_correctly() {
        let g = q(3, 128);
        assert_eq!(g.key().device, 3);
        let c = Query::conv(5, ConvShape::from_output(8, 7, 7, 64, 64, 3, 3, DType::F32));
        assert_eq!(c.key().device, 5);
        assert_ne!(g.key(), c.key());
    }
}
