//! Deterministic fault injection for the *tuning* path.
//!
//! PR 6 gave durability a seeded fault seam ([`isaac_core::durability`]'s
//! `DurabilityIo`/`FaultIo`); this module is the same idea one layer up:
//! a [`TuneFault`] installed via
//! [`crate::TuneService::set_tune_fault`] intercepts every cold-tune
//! attempt *before* the real engine runs and can make it panic, error,
//! stall, or hit the wrong device. The serving chaos suite
//! (`tests/chaos_serve.rs`) drives the whole self-healing stack --
//! retries, circuit breakers, quarantine, degraded mode, repair --
//! through this one seam, with scripts derived from `ISAAC_CHAOS_SEEDS`.
//!
//! ## Determinism
//!
//! A [`FaultTuner`] script is consumed in *attempt order per key*: the
//! single-flight table guarantees at most one in-flight tune per
//! [`TuneKey`], so per-key scripts replay identically regardless of
//! worker count or scheduling. Global scripts ([`FaultTuner::fault_next`])
//! are consumed in whatever order attempts reach the seam -- fine for
//! single-key tests, racy for multi-key ones; the chaos suite uses
//! per-key scripts exclusively.
//!
//! ## Fault catalog
//!
//! | Fault | Models | Serving-side symptom |
//! |---|---|---|
//! | [`FaultKind::Panic`] | compiler/driver crash mid-tune | leader panic, retried, breaker unhealthy |
//! | [`FaultKind::Error`] | tune returns no decision | retried, breaker unhealthy |
//! | [`FaultKind::Slow`] | driver stall / thermal throttle | success, but counted unhealthy when past the breaker's latency SLO |
//! | [`FaultKind::WrongDevice`] | stale shard handle after hot-swap | treated as an error: no decision published |

use isaac_core::TuneKey;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

/// One injected tuning fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The tune panics mid-flight (a worker catches it, notes a leader
    /// panic, and retries under the [`crate::RetryPolicy`]).
    Panic,
    /// The tune completes but yields no decision (as if no legal
    /// configuration existed). Retried like a panic.
    Error,
    /// The tune succeeds after an extra injected delay -- exercising
    /// latency-window health tracking without failing the flight.
    Slow(Duration),
    /// The tune ran against a stale/mismatched device handle: the
    /// result is untrustworthy and discarded. Retried like a panic.
    WrongDevice,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Panic => write!(f, "panic"),
            FaultKind::Error => write!(f, "error"),
            FaultKind::Slow(d) => write!(f, "slow({d:?})"),
            FaultKind::WrongDevice => write!(f, "wrong-device"),
        }
    }
}

/// The tuning-path fault seam. Installed on a [`crate::TuneService`]
/// via [`crate::TuneService::set_tune_fault`]; consulted once per
/// cold-tune attempt (foreground, demoted, and repair jobs alike).
///
/// `attempt` is the flight's zero-based attempt number, so a seam can
/// fault the first attempt and let the retry through.
pub trait TuneFault: Send + Sync + fmt::Debug {
    /// Decide the fate of one tune attempt. `None` lets the real tune
    /// run.
    fn intercept(&self, key: &TuneKey, attempt: u32) -> Option<FaultKind>;
}

/// Per-key fault script.
#[derive(Debug, Default)]
struct KeyPlan {
    /// Faults consumed front-to-back, one per attempt.
    faults: VecDeque<FaultKind>,
    /// After `faults` drains, keep injecting this forever (a poisoned
    /// key that never heals until [`FaultTuner::heal`]).
    poisoned: Option<FaultKind>,
}

#[derive(Debug, Default)]
struct FaultState {
    /// Global script: `(remaining count, kind)` pairs consumed in
    /// arrival order by attempts with no per-key plan.
    global: VecDeque<(u64, FaultKind)>,
    per_key: HashMap<TuneKey, KeyPlan>,
    /// Attempts seen per key (faulted or not) -- the chaos suite's
    /// retry-budget ledger.
    attempts: HashMap<TuneKey, u32>,
    /// Total attempts intercepted (faulted or not).
    total_attempts: u64,
    /// Total faults injected.
    injected: u64,
}

/// A scripted, deterministic [`TuneFault`]: faults are declared up
/// front (per key or globally) and consumed one per tune attempt.
/// Cloneless and lock-cheap -- one mutex acquisition per cold tune,
/// which only matters on the (already expensive) miss path.
#[derive(Debug, Default)]
pub struct FaultTuner {
    state: Mutex<FaultState>,
}

impl FaultTuner {
    /// An empty seam: injects nothing until scripted.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inject `kind` into the next `count` attempts that have no
    /// per-key script (queued after any prior global script).
    pub fn fault_next(&self, count: u64, kind: FaultKind) {
        if count == 0 {
            return;
        }
        self.state.lock().unwrap().global.push_back((count, kind));
    }

    /// Append a fault script for one key: attempt `i` of `key` suffers
    /// `faults[i]` until the script drains, then tunes run clean.
    pub fn fault_key(&self, key: TuneKey, faults: &[FaultKind]) {
        let mut st = self.state.lock().unwrap();
        st.per_key.entry(key).or_default().faults.extend(faults);
    }

    /// Poison a key: every attempt faults with `kind`, forever, until
    /// [`FaultTuner::heal`]. Queued per-key scripts run first.
    pub fn poison_key(&self, key: TuneKey, kind: FaultKind) {
        let mut st = self.state.lock().unwrap();
        st.per_key.entry(key).or_default().poisoned = Some(kind);
    }

    /// Drop all scripts for `key` (poisoned or queued): subsequent
    /// attempts run clean.
    pub fn heal(&self, key: &TuneKey) {
        self.state.lock().unwrap().per_key.remove(key);
    }

    /// Drop every script, global and per-key. Attempt counters survive.
    pub fn clear(&self) {
        let mut st = self.state.lock().unwrap();
        st.global.clear();
        st.per_key.clear();
    }

    /// Tune attempts seen for `key` since construction (faulted or
    /// clean). The chaos suite asserts a quarantined key never exceeds
    /// its retry budget again with this.
    pub fn attempts(&self, key: &TuneKey) -> u32 {
        *self.state.lock().unwrap().attempts.get(key).unwrap_or(&0)
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().unwrap().injected
    }

    /// Total tune attempts intercepted so far (faulted or clean).
    pub fn total_attempts(&self) -> u64 {
        self.state.lock().unwrap().total_attempts
    }
}

impl TuneFault for FaultTuner {
    fn intercept(&self, key: &TuneKey, _attempt: u32) -> Option<FaultKind> {
        let mut st = self.state.lock().unwrap();
        st.total_attempts += 1;
        *st.attempts.entry(*key).or_insert(0) += 1;

        // Per-key scripts win over the global queue.
        let planned = match st.per_key.get_mut(key) {
            Some(plan) => {
                let fault = plan.faults.pop_front().or(plan.poisoned);
                if plan.faults.is_empty() && plan.poisoned.is_none() {
                    st.per_key.remove(key);
                }
                fault
            }
            None => match st.global.front_mut() {
                Some((count, kind)) => {
                    let kind = *kind;
                    *count -= 1;
                    if *count == 0 {
                        st.global.pop_front();
                    }
                    Some(kind)
                }
                None => None,
            },
        };
        if planned.is_some() {
            st.injected += 1;
        }
        planned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isaac_device::DType;
    use isaac_gen::shapes::GemmShape;

    fn key(m: u32) -> TuneKey {
        TuneKey::gemm(&GemmShape::new(m, 64, 64, "N", "T", DType::F32))
    }

    #[test]
    fn per_key_scripts_replay_in_attempt_order_then_run_clean() {
        let seam = FaultTuner::new();
        seam.fault_key(key(1), &[FaultKind::Panic, FaultKind::Error]);
        assert_eq!(seam.intercept(&key(1), 0), Some(FaultKind::Panic));
        assert_eq!(seam.intercept(&key(1), 1), Some(FaultKind::Error));
        assert_eq!(seam.intercept(&key(1), 2), None);
        assert_eq!(seam.attempts(&key(1)), 3);
        assert_eq!(seam.injected(), 2);
    }

    #[test]
    fn poisoned_keys_fault_forever_until_healed() {
        let seam = FaultTuner::new();
        seam.poison_key(key(2), FaultKind::Panic);
        for attempt in 0..10 {
            assert_eq!(seam.intercept(&key(2), attempt), Some(FaultKind::Panic));
        }
        seam.heal(&key(2));
        assert_eq!(seam.intercept(&key(2), 10), None);
    }

    #[test]
    fn queued_script_runs_before_the_poison() {
        let seam = FaultTuner::new();
        seam.fault_key(key(3), &[FaultKind::Slow(Duration::from_millis(1))]);
        seam.poison_key(key(3), FaultKind::Error);
        assert_eq!(
            seam.intercept(&key(3), 0),
            Some(FaultKind::Slow(Duration::from_millis(1)))
        );
        assert_eq!(seam.intercept(&key(3), 1), Some(FaultKind::Error));
    }

    #[test]
    fn global_script_is_a_counted_queue_skipped_by_per_key_plans() {
        let seam = FaultTuner::new();
        seam.fault_next(2, FaultKind::Panic);
        seam.fault_next(1, FaultKind::Error);
        seam.fault_key(key(4), &[FaultKind::WrongDevice]);
        // The per-key plan consumes its own script, not the global one.
        assert_eq!(seam.intercept(&key(4), 0), Some(FaultKind::WrongDevice));
        assert_eq!(seam.intercept(&key(5), 0), Some(FaultKind::Panic));
        assert_eq!(seam.intercept(&key(6), 0), Some(FaultKind::Panic));
        assert_eq!(seam.intercept(&key(5), 1), Some(FaultKind::Error));
        assert_eq!(seam.intercept(&key(5), 2), None);
    }

    #[test]
    fn clear_drops_scripts_but_keeps_attempt_counters() {
        let seam = FaultTuner::new();
        seam.poison_key(key(7), FaultKind::Panic);
        seam.intercept(&key(7), 0);
        seam.clear();
        assert_eq!(seam.intercept(&key(7), 1), None);
        assert_eq!(seam.attempts(&key(7)), 2);
    }
}
