//! Single-flight request coalescing: concurrent computations for the
//! same key collapse into one.
//!
//! The first caller to miss on a key becomes the **leader** and runs the
//! (expensive) computation; callers arriving while it is in flight
//! become **waiters** and block on the leader's result, which is handed
//! to every waiter by value. No matter how many threads race a cold
//! `TuneKey`, exactly one cold tune runs.
//!
//! A flight exists only while its computation is in flight -- this is
//! *coalescing*, not memoization. Callers are expected to consult their
//! cache first and again publish the result there; the flight table only
//! bridges the window between the first miss and the cache insert.
//!
//! If a leader panics, its flight is marked aborted (via a drop guard),
//! waiters wake up and race to become the new leader, and the panic
//! propagates in the original leader's thread only.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a [`SingleFlight::run`] call obtained its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This caller ran the computation.
    Led,
    /// This caller joined an in-flight computation and got the leader's
    /// result.
    Joined,
}

/// Lead/join counters of a [`SingleFlight`] table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Computations actually run.
    pub led: u64,
    /// Calls that coalesced onto an in-flight computation.
    pub joined: u64,
}

impl FlightStats {
    /// Fraction of calls that were absorbed by coalescing.
    pub fn dedup_ratio(&self) -> f64 {
        let total = self.led + self.joined;
        if total == 0 {
            0.0
        } else {
            self.joined as f64 / total as f64
        }
    }
}

enum FlightState<V> {
    Pending,
    Done(V),
    /// The leader panicked before publishing.
    Aborted,
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    cv: Condvar,
}

impl<V: Clone> Flight<V> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, state: FlightState<V>) {
        *self.state.lock().expect("flight poisoned") = state;
        self.cv.notify_all();
    }

    /// Block until the leader publishes; `None` if the flight aborted.
    fn wait(&self) -> Option<V> {
        let mut state = self.state.lock().expect("flight poisoned");
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self.cv.wait(state).expect("flight poisoned");
                }
                FlightState::Done(v) => return Some(v.clone()),
                FlightState::Aborted => return None,
            }
        }
    }
}

/// Marks the flight aborted and frees its table slot if the leader
/// unwinds before publishing.
struct LeaderGuard<'a, K: Eq + Hash + Clone, V: Clone> {
    table: &'a SingleFlight<K, V>,
    key: &'a K,
    flight: &'a Arc<Flight<V>>,
    armed: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            self.flight.publish(FlightState::Aborted);
            self.table.remove(self.key);
        }
    }
}

/// A table of in-flight computations keyed by `K`; see the module docs.
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
    led: AtomicU64,
    joined: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> std::fmt::Debug for SingleFlight<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleFlight")
            .field("led", &self.led.load(Ordering::Relaxed))
            .field("joined", &self.joined.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// Empty flight table.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
            led: AtomicU64::new(0),
            joined: AtomicU64::new(0),
        }
    }

    /// Compute `f()` for `key`, coalescing with any computation already
    /// in flight for the same key: exactly one caller (the returned
    /// [`Role::Led`]) runs `f`; everyone else blocks and receives the
    /// leader's value.
    pub fn run(&self, key: K, f: impl FnOnce() -> V) -> (V, Role) {
        loop {
            let ticket = {
                let mut map = self.inflight.lock().expect("flight table poisoned");
                match map.entry(key.clone()) {
                    Entry::Occupied(e) => Err(Arc::clone(e.get())),
                    Entry::Vacant(slot) => {
                        let flight = Arc::new(Flight::new());
                        slot.insert(Arc::clone(&flight));
                        Ok(flight)
                    }
                }
            };
            match ticket {
                Ok(flight) => {
                    self.led.fetch_add(1, Ordering::Relaxed);
                    let mut guard = LeaderGuard {
                        table: self,
                        key: &key,
                        flight: &flight,
                        armed: true,
                    };
                    let value = f();
                    guard.armed = false;
                    flight.publish(FlightState::Done(value.clone()));
                    self.remove(&key);
                    return (value, Role::Led);
                }
                Err(flight) => {
                    self.joined.fetch_add(1, Ordering::Relaxed);
                    match flight.wait() {
                        Some(value) => return (value, Role::Joined),
                        // Leader aborted: race for leadership again.
                        None => continue,
                    }
                }
            }
        }
    }

    fn remove(&self, key: &K) {
        self.inflight
            .lock()
            .expect("flight table poisoned")
            .remove(key);
    }

    /// Number of computations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().expect("flight table poisoned").len()
    }

    /// Lead/join counters since construction.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            led: self.led.load(Ordering::Relaxed),
            joined: self.joined.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn contended_key_computes_exactly_once() {
        const THREADS: usize = 8;
        let flights: SingleFlight<u32, u64> = SingleFlight::new();
        let executions = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        let results: Vec<(u64, Role)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        flights.run(42, || {
                            executions.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open until every other
                            // thread has joined it (a fixed sleep would
                            // let a descheduled straggler arrive after
                            // completion and legitimately re-lead). The
                            // timeout only bounds a broken test.
                            let start = std::time::Instant::now();
                            while flights.stats().joined < (THREADS - 1) as u64
                                && start.elapsed() < Duration::from_secs(10)
                            {
                                std::thread::yield_now();
                            }
                            0xC0FFEE
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            executions.load(Ordering::SeqCst),
            1,
            "exactly one cold computation"
        );
        assert!(results.iter().all(|(v, _)| *v == 0xC0FFEE));
        let led = results.iter().filter(|(_, r)| *r == Role::Led).count();
        assert_eq!(led, 1, "exactly one leader");
        assert_eq!(
            flights.stats(),
            FlightStats {
                led: 1,
                joined: (THREADS - 1) as u64
            }
        );
        assert_eq!(flights.in_flight(), 0, "flight slot is freed");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let (a, _) = flights.run(1, || 10);
        let (b, _) = flights.run(2, || 20);
        assert_eq!((a, b), (10, 20));
        assert_eq!(flights.stats().led, 2);
        assert_eq!(flights.stats().joined, 0);
    }

    #[test]
    fn sequential_runs_recompute() {
        // Coalescing, not memoization: once a flight lands, the next
        // call for the same key computes again.
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let (v, role) = flights.run(7, || calls.fetch_add(1, Ordering::SeqCst) as u32);
            assert_eq!(role, Role::Led);
            let _ = v;
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn leader_panic_aborts_the_flight_and_a_waiter_takes_over() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let barrier = Barrier::new(2);
        let (value, role) = std::thread::scope(|s| {
            let panicker = s.spawn(|| {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    flights.run(9, || {
                        barrier.wait();
                        // Give the second thread time to join the flight
                        // before unwinding.
                        std::thread::sleep(Duration::from_millis(100));
                        panic!("leader dies");
                    })
                }));
                assert!(result.is_err(), "leader's panic propagates");
            });
            let survivor = s.spawn(|| {
                barrier.wait();
                std::thread::sleep(Duration::from_millis(20));
                flights.run(9, || 5)
            });
            panicker.join().unwrap();
            survivor.join().unwrap()
        });
        assert_eq!(value, 5, "survivor recomputes after the abort");
        // The survivor either joined-then-led (raced while the leader was
        // alive) or led outright (arrived after the abort).
        assert_eq!(role, Role::Led);
        assert_eq!(flights.in_flight(), 0);
    }
}
