//! Single-flight request coalescing: concurrent computations for the
//! same key collapse into one.
//!
//! The first caller to claim a key becomes the **leader** and is
//! responsible for making the (expensive) computation happen; callers
//! arriving while it is in flight become **waiters**. Waiters do not
//! block inside the table: every claim registers a *waiter callback*
//! that is invoked with the leader's value when the flight completes
//! (or with `None` if it aborts), so the same primitive backs both the
//! blocking [`SingleFlight::run`] compatibility path and the
//! poll/notify ticket front door ([`crate::TuneService`]) -- a ticket's
//! callback stores the decision and wakes a [`std::task::Waker`], a
//! blocking caller's callback fills a condvar cell.
//!
//! A flight exists only while its computation is in flight -- this is
//! *coalescing*, not memoization. Callers are expected to consult their
//! cache first and again publish the result there; the flight table only
//! bridges the window between the first miss and the cache insert.
//!
//! Failure paths are explicit and counted in [`FlightStats`]:
//!
//! * a leader that panics mid-computation **aborts** the flight
//!   ([`SingleFlight::abort`], `leader_panics` counter): waiters are
//!   notified with `None` and may race to re-lead (the blocking `run`
//!   path) or be retried centrally (the service's worker pool, which
//!   keeps the entry alive across retries and only aborts after the
//!   retry budget is spent);
//! * an administrative **cancel** ([`SingleFlight::cancel`], e.g. the
//!   flight's device shard was removed) also hands waiters `None`, but
//!   is counted separately -- a hot-swap is not a crash.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// How a caller's claim on a flight was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This caller opened the flight and is responsible for its
    /// completion (by computing inline, or by scheduling work that
    /// eventually calls [`SingleFlight::complete`]).
    Led,
    /// This caller joined an in-flight computation and will receive the
    /// leader's result.
    Joined,
}

/// Counters of a [`SingleFlight`] table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Flights opened (computations made the caller's responsibility).
    pub led: u64,
    /// Calls that coalesced onto an in-flight computation.
    pub joined: u64,
    /// Flights aborted because their leader panicked. Until PR 4 the
    /// abort+retry dance was invisible in stats; now every leader panic
    /// is recorded here even when a retry later succeeds.
    pub leader_panics: u64,
    /// Flights cancelled administratively (shard removal/replacement,
    /// service shutdown) -- their waiters were failed, not retried.
    pub cancelled: u64,
}

impl FlightStats {
    /// Fraction of calls that were absorbed by coalescing.
    pub fn dedup_ratio(&self) -> f64 {
        let total = self.led + self.joined;
        if total == 0 {
            0.0
        } else {
            self.joined as f64 / total as f64
        }
    }
}

/// A waiter callback: invoked exactly once with `Some(value)` when the
/// flight completes, or `None` when it aborts or is cancelled. Always
/// invoked *outside* the table lock.
pub type Waiter<V> = Box<dyn FnOnce(Option<V>) + Send>;

/// Identity of one flight: keys recur (the same shape misses again
/// after an eviction or a shard swap), flight ids never do. Completion
/// paths that may act on *stale* context (a queued job whose shard was
/// hot-swapped) target `(key, id)` so they can never touch a newer
/// flight for the same key.
pub type FlightId = u64;

struct FlightEntry<V> {
    id: FlightId,
    waiters: Vec<Waiter<V>>,
    /// Waiters whose callers have given up (their tickets were
    /// dropped). When *every* waiter of a not-yet-started flight is
    /// abandoned, the flight is cancelled -- nobody is listening, so
    /// the queued job should never run.
    abandoned: usize,
    /// Live waiters registered *without* a deadline. While this is
    /// non-zero someone is willing to wait unboundedly, so the flight
    /// is never sheddable.
    unbounded: usize,
    /// Latest deadline across the bounded waiters (never reduced on
    /// abandonment -- conservatively, a flight only becomes sheddable
    /// once every deadline anyone ever registered has passed).
    latest_deadline: Option<Instant>,
    /// Set by the executor once the computation is actually running
    /// ([`SingleFlight::mark_started`]): from then on abandonment no
    /// longer cancels (the work is being paid for anyway and its result
    /// still feeds the cache).
    started: bool,
}

impl<V> FlightEntry<V> {
    fn new(id: FlightId) -> Self {
        FlightEntry {
            id,
            waiters: Vec::new(),
            abandoned: 0,
            unbounded: 0,
            latest_deadline: None,
            started: false,
        }
    }

    /// Add one waiter, tracking its deadline class for the sheddability
    /// probe ([`SingleFlight::sheddable`]).
    fn register(&mut self, waiter: Waiter<V>, deadline: Option<Instant>) {
        self.waiters.push(waiter);
        match deadline {
            None => self.unbounded += 1,
            Some(d) => {
                self.latest_deadline = Some(self.latest_deadline.map_or(d, |cur| cur.max(d)));
            }
        }
    }
}

/// Blocking wait cell used by the [`SingleFlight::run`] compatibility
/// path: a waiter callback fills it, the joining thread sleeps on the
/// condvar.
struct WaitCell<V> {
    slot: Mutex<Option<Option<V>>>,
    cv: Condvar,
}

impl<V> WaitCell<V> {
    fn new() -> Self {
        WaitCell {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, value: Option<V>) {
        *self.slot.lock().expect("wait cell poisoned") = Some(value);
        self.cv.notify_all();
    }

    fn wait(&self) -> Option<V> {
        let mut slot = self.slot.lock().expect("wait cell poisoned");
        loop {
            if let Some(value) = slot.take() {
                return value;
            }
            slot = self.cv.wait(slot).expect("wait cell poisoned");
        }
    }
}

/// Aborts the flight (counting the leader panic) if an inline leader
/// unwinds before publishing.
struct LeaderGuard<'a, K: Eq + Hash + Clone, V: Clone + Send + 'static> {
    table: &'a SingleFlight<K, V>,
    key: &'a K,
    armed: bool,
}

impl<K: Eq + Hash + Clone, V: Clone + Send + 'static> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            self.table.abort(self.key);
        }
    }
}

/// A table of in-flight computations keyed by `K`; see the module docs.
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, FlightEntry<V>>>,
    next_id: AtomicU64,
    led: AtomicU64,
    joined: AtomicU64,
    leader_panics: AtomicU64,
    cancelled: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone + Send + 'static> Default for SingleFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> std::fmt::Debug for SingleFlight<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleFlight")
            .field("led", &self.led.load(Ordering::Relaxed))
            .field("joined", &self.joined.load(Ordering::Relaxed))
            .field("leader_panics", &self.leader_panics.load(Ordering::Relaxed))
            .field("cancelled", &self.cancelled.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K: Eq + Hash + Clone, V: Clone + Send + 'static> SingleFlight<K, V> {
    /// Empty flight table.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
            led: AtomicU64::new(0),
            joined: AtomicU64::new(0),
            leader_panics: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        }
    }

    fn fresh_id(&self) -> FlightId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Claim the flight for `key`, registering a waiter either way, and
    /// return the flight's identity along with the role.
    ///
    /// `make` is invoked (under the table lock, so keep it cheap) with
    /// the role the claim resolved to, and must return the waiter
    /// callback that will receive the flight's outcome. A [`Role::Led`]
    /// return makes the caller responsible for the flight's completion:
    /// it must arrange for [`SingleFlight::complete_if`] (targeting the
    /// returned id), [`SingleFlight::cancel`] or
    /// [`SingleFlight::fail_if`] to eventually run, or every waiter
    /// leaks.
    ///
    /// `deadline` is the waiter's latency bound, if any: it does not
    /// bound the flight itself, but feeds the sheddability probe
    /// ([`SingleFlight::sheddable`]) -- a queued flight all of whose
    /// waiters' deadlines have passed can be demoted instead of burning
    /// a foreground worker.
    pub fn claim(
        &self,
        key: K,
        deadline: Option<Instant>,
        make: impl FnOnce(Role) -> Waiter<V>,
    ) -> (Role, FlightId) {
        let mut map = self.inflight.lock().expect("flight table poisoned");
        match map.entry(key) {
            Entry::Vacant(slot) => {
                let id = self.fresh_id();
                let entry = slot.insert(FlightEntry::new(id));
                entry.register(make(Role::Led), deadline);
                self.led.fetch_add(1, Ordering::Relaxed);
                (Role::Led, id)
            }
            Entry::Occupied(mut entry) => {
                let entry = entry.get_mut();
                entry.register(make(Role::Joined), deadline);
                self.joined.fetch_add(1, Ordering::Relaxed);
                (Role::Joined, entry.id)
            }
        }
    }

    /// Whether the not-yet-started flight `(key, id)` has at least one
    /// live waiter but nobody left who can still receive its result in
    /// time: every live waiter registered a deadline and the latest of
    /// those deadlines has passed. The worker pool demotes such jobs to
    /// the background lane ([`crate::ServiceStats::shed`]) -- the tune
    /// still runs eventually and warms the cache, but it stops
    /// competing with flights someone is actually waiting on.
    pub fn sheddable(&self, key: &K, id: FlightId, now: Instant) -> bool {
        let map = self.inflight.lock().expect("flight table poisoned");
        match map.get(key) {
            Some(e) if e.id == id && !e.started => {
                e.abandoned < e.waiters.len()
                    && e.unbounded == 0
                    && e.latest_deadline.is_some_and(|d| now >= d)
            }
            _ => false,
        }
    }

    /// Complete the flight for `key`: every registered waiter receives a
    /// clone of `value` (outside the table lock) and the slot is freed.
    /// Returns the number of waiters served; 0 if no flight existed
    /// (it was cancelled, or completed by someone else).
    pub fn complete(&self, key: &K, value: V) -> usize {
        match self.take(key) {
            Some(entry) => {
                let n = entry.waiters.len();
                for waiter in entry.waiters {
                    waiter(Some(value.clone()));
                }
                n
            }
            None => 0,
        }
    }

    /// [`SingleFlight::complete`] targeting one specific flight: a
    /// no-op (returning 0) unless the pending flight for `key` is
    /// exactly `id`, so a completer holding stale context can never
    /// resolve a newer flight that reuses the key.
    pub fn complete_if(&self, key: &K, id: FlightId, value: V) -> usize {
        match self.take_if(key, id) {
            Some(entry) => {
                let n = entry.waiters.len();
                for waiter in entry.waiters {
                    waiter(Some(value.clone()));
                }
                n
            }
            None => 0,
        }
    }

    /// Abort the flight after a leader panic: waiters receive `None`,
    /// the slot is freed, and the panic is counted in
    /// [`FlightStats::leader_panics`]. Returns the number of waiters
    /// notified.
    pub fn abort(&self, key: &K) -> usize {
        self.leader_panics.fetch_add(1, Ordering::Relaxed);
        self.take(key).map_or(0, |entry| Self::fail_entry(entry))
    }

    /// Record a leader panic *without* tearing the flight down -- used
    /// by the service's worker pool, which keeps the entry (and its
    /// registered tickets) alive while it retries the computation.
    pub fn note_leader_panic(&self) {
        self.leader_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Cancel the flight administratively (shard removal, shutdown):
    /// waiters receive `None`, counted in [`FlightStats::cancelled`].
    /// Returns the number of waiters notified; a cancel with no pending
    /// flight is an uncounted no-op.
    pub fn cancel(&self, key: &K) -> usize {
        match self.take(key) {
            Some(entry) => {
                // Count before notifying: a waiter woken by this cancel
                // must observe it in the stats.
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                Self::fail_entry(entry)
            }
            None => 0,
        }
    }

    /// [`SingleFlight::cancel`] targeting one specific flight (see
    /// [`SingleFlight::complete_if`]); a no-op unless the pending flight
    /// for `key` is exactly `id`.
    pub fn cancel_if(&self, key: &K, id: FlightId) -> usize {
        match self.take_if(key, id) {
            Some(entry) => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                Self::fail_entry(entry)
            }
            None => 0,
        }
    }

    /// Terminally fail one specific flight *without* the administrative
    /// `cancelled` count: the retry-budget-exhausted path, whose crashes
    /// are already recorded in [`FlightStats::leader_panics`] (a repeat
    /// panic is not a hot-swap). Waiters receive `None`.
    pub fn fail_if(&self, key: &K, id: FlightId) -> usize {
        match self.take_if(key, id) {
            Some(entry) => Self::fail_entry(entry),
            None => 0,
        }
    }

    /// Mark one specific flight as *started*: its computation is
    /// actually running (not merely queued). A started flight is never
    /// cancelled by waiter abandonment -- see [`SingleFlight::abandon`].
    /// A no-op unless the pending flight for `key` is exactly `id`.
    pub fn mark_started(&self, key: &K, id: FlightId) {
        let mut map = self.inflight.lock().expect("flight table poisoned");
        if let Some(entry) = map.get_mut(key) {
            if entry.id == id {
                entry.started = true;
            }
        }
    }

    /// Record that one waiter of a flight has given up (its ticket was
    /// dropped before resolution). When every registered waiter of a
    /// **not-yet-started** flight is abandoned, the flight is cancelled
    /// exactly like [`SingleFlight::cancel_if`] -- counted in
    /// [`FlightStats::cancelled`], waiters notified with `None` (they
    /// resolve dead tickets' cells, keeping gauges truthful, and wake
    /// nobody) -- so the queued job is dropped by the `(key, id)` check
    /// when a worker reaches it. Abandoning a started flight only
    /// records the disinterest: the computation finishes and still
    /// publishes its result. `bounded` says whether the lost waiter had
    /// registered a deadline, so the sheddability bookkeeping stays
    /// truthful. Returns the number of waiters notified (0 unless this
    /// abandonment cancelled the flight).
    pub fn abandon(&self, key: &K, id: FlightId, bounded: bool) -> usize {
        let doomed = {
            let mut map = self.inflight.lock().expect("flight table poisoned");
            match map.get_mut(key) {
                Some(entry) if entry.id == id => {
                    entry.abandoned += 1;
                    if !bounded {
                        entry.unbounded = entry.unbounded.saturating_sub(1);
                    }
                    if !entry.started && entry.abandoned >= entry.waiters.len() {
                        map.remove(key)
                    } else {
                        None
                    }
                }
                _ => return 0,
            }
        };
        match doomed {
            Some(entry) => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                Self::fail_entry(entry)
            }
            None => 0,
        }
    }

    /// The id of the pending flight for `key`, if any.
    pub fn pending_id(&self, key: &K) -> Option<FlightId> {
        self.inflight
            .lock()
            .expect("flight table poisoned")
            .get(key)
            .map(|entry| entry.id)
    }

    /// Cancel every pending flight whose key matches `pred` (e.g. all
    /// flights addressed to a removed device shard). Returns the total
    /// number of waiters notified across the cancelled flights.
    pub fn cancel_matching(&self, pred: impl Fn(&K) -> bool) -> usize {
        let doomed: Vec<(K, FlightEntry<V>)> = {
            let mut map = self.inflight.lock().expect("flight table poisoned");
            let keys: Vec<K> = map.keys().filter(|k| pred(k)).cloned().collect();
            keys.into_iter()
                .filter_map(|k| map.remove(&k).map(|e| (k, e)))
                .collect()
        };
        let mut notified = 0;
        for (_, entry) in doomed {
            self.cancelled.fetch_add(1, Ordering::Relaxed);
            notified += entry.waiters.len();
            for waiter in entry.waiters {
                waiter(None);
            }
        }
        notified
    }

    /// Remove the flight entry, if pending.
    fn take(&self, key: &K) -> Option<FlightEntry<V>> {
        self.inflight
            .lock()
            .expect("flight table poisoned")
            .remove(key)
    }

    /// Remove the flight entry only if it is the flight `id`.
    fn take_if(&self, key: &K, id: FlightId) -> Option<FlightEntry<V>> {
        let mut map = self.inflight.lock().expect("flight table poisoned");
        if map.get(key).is_some_and(|entry| entry.id == id) {
            map.remove(key)
        } else {
            None
        }
    }

    /// Hand every waiter of a removed entry `None`.
    fn fail_entry(entry: FlightEntry<V>) -> usize {
        let n = entry.waiters.len();
        for waiter in entry.waiters {
            waiter(None);
        }
        n
    }

    /// Whether a flight is currently pending for `key`.
    pub fn contains(&self, key: &K) -> bool {
        self.inflight
            .lock()
            .expect("flight table poisoned")
            .contains_key(key)
    }

    /// Compute `f()` for `key`, coalescing with any computation already
    /// in flight for the same key: exactly one caller (the returned
    /// [`Role::Led`]) runs `f` inline; everyone else blocks and receives
    /// the leader's value. The blocking compatibility path over the
    /// callback primitives above -- if the leader panics, blocked
    /// waiters wake and race to become the new leader.
    pub fn run(&self, key: K, f: impl FnOnce() -> V) -> (V, Role) {
        loop {
            let wait_cell = {
                let mut map = self.inflight.lock().expect("flight table poisoned");
                match map.entry(key.clone()) {
                    Entry::Vacant(slot) => {
                        // Lead without a self-waiter: the value comes
                        // straight back from `f`.
                        let id = self.fresh_id();
                        slot.insert(FlightEntry::new(id));
                        self.led.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                    Entry::Occupied(mut entry) => {
                        let cell = Arc::new(WaitCell::new());
                        let filler = Arc::clone(&cell);
                        entry
                            .get_mut()
                            .register(Box::new(move |v| filler.fill(v)), None);
                        self.joined.fetch_add(1, Ordering::Relaxed);
                        Some(cell)
                    }
                }
            };
            match wait_cell {
                None => {
                    let mut guard = LeaderGuard {
                        table: self,
                        key: &key,
                        armed: true,
                    };
                    let value = f();
                    guard.armed = false;
                    self.complete(&key, value.clone());
                    return (value, Role::Led);
                }
                Some(cell) => match cell.wait() {
                    Some(value) => return (value, Role::Joined),
                    // Leader aborted: race for leadership again.
                    None => continue,
                },
            }
        }
    }

    /// Number of computations currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.lock().expect("flight table poisoned").len()
    }

    /// Counters since construction.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            led: self.led.load(Ordering::Relaxed),
            joined: self.joined.load(Ordering::Relaxed),
            leader_panics: self.leader_panics.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn contended_key_computes_exactly_once() {
        const THREADS: usize = 8;
        let flights: SingleFlight<u32, u64> = SingleFlight::new();
        let executions = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        let results: Vec<(u64, Role)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        flights.run(42, || {
                            executions.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open until every other
                            // thread has joined it (a fixed sleep would
                            // let a descheduled straggler arrive after
                            // completion and legitimately re-lead). The
                            // timeout only bounds a broken test.
                            let start = std::time::Instant::now();
                            while flights.stats().joined < (THREADS - 1) as u64
                                && start.elapsed() < Duration::from_secs(10)
                            {
                                std::thread::yield_now();
                            }
                            0xC0FFEE
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            executions.load(Ordering::SeqCst),
            1,
            "exactly one cold computation"
        );
        assert!(results.iter().all(|(v, _)| *v == 0xC0FFEE));
        let led = results.iter().filter(|(_, r)| *r == Role::Led).count();
        assert_eq!(led, 1, "exactly one leader");
        assert_eq!(
            flights.stats(),
            FlightStats {
                led: 1,
                joined: (THREADS - 1) as u64,
                ..Default::default()
            }
        );
        assert_eq!(flights.in_flight(), 0, "flight slot is freed");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let (a, _) = flights.run(1, || 10);
        let (b, _) = flights.run(2, || 20);
        assert_eq!((a, b), (10, 20));
        assert_eq!(flights.stats().led, 2);
        assert_eq!(flights.stats().joined, 0);
    }

    #[test]
    fn sequential_runs_recompute() {
        // Coalescing, not memoization: once a flight lands, the next
        // call for the same key computes again.
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let (v, role) = flights.run(7, || calls.fetch_add(1, Ordering::SeqCst) as u32);
            assert_eq!(role, Role::Led);
            let _ = v;
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn leader_panic_aborts_the_flight_and_a_waiter_takes_over() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let barrier = Barrier::new(2);
        let (value, role) = std::thread::scope(|s| {
            let panicker = s.spawn(|| {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    flights.run(9, || {
                        barrier.wait();
                        // Give the second thread time to join the flight
                        // before unwinding.
                        std::thread::sleep(Duration::from_millis(100));
                        panic!("leader dies");
                    })
                }));
                assert!(result.is_err(), "leader's panic propagates");
            });
            let survivor = s.spawn(|| {
                barrier.wait();
                std::thread::sleep(Duration::from_millis(20));
                flights.run(9, || 5)
            });
            panicker.join().unwrap();
            survivor.join().unwrap()
        });
        assert_eq!(value, 5, "survivor recomputes after the abort");
        // The survivor either joined-then-led (raced while the leader was
        // alive) or led outright (arrived after the abort).
        assert_eq!(role, Role::Led);
        assert_eq!(flights.in_flight(), 0);
        assert_eq!(
            flights.stats().leader_panics,
            1,
            "the abort is visible in stats even though the retry succeeded"
        );
    }

    #[test]
    fn claim_registers_waiters_and_complete_fans_out() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let waiter = |hits: &Arc<AtomicUsize>| -> Waiter<u32> {
            let hits = Arc::clone(hits);
            Box::new(move |v| {
                assert_eq!(v, Some(99));
                hits.fetch_add(1, Ordering::SeqCst);
            })
        };
        let (role, id) = flights.claim(5, None, |_| waiter(&hits));
        assert_eq!(role, Role::Led);
        let (role, joined_id) = flights.claim(5, None, |_| waiter(&hits));
        assert_eq!(role, Role::Joined);
        assert_eq!(joined_id, id, "joiners see the leader's flight id");
        assert_eq!(flights.claim(5, None, |_| waiter(&hits)).0, Role::Joined);
        assert!(flights.contains(&5));
        assert_eq!(flights.pending_id(&5), Some(id));
        assert_eq!(flights.complete(&5, 99), 3, "all three waiters served");
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        assert_eq!(flights.in_flight(), 0);
        assert_eq!(flights.complete(&5, 99), 0, "second complete is a no-op");
        let stats = flights.stats();
        assert_eq!((stats.led, stats.joined), (1, 2));
    }

    #[test]
    fn stale_flight_ids_cannot_touch_newer_flights() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let waiter = |got: &Arc<Mutex<Vec<Option<u32>>>>| -> Waiter<u32> {
            let got = Arc::clone(got);
            Box::new(move |v| got.lock().unwrap().push(v))
        };

        // Flight A opens, is cancelled, and the key re-opens as flight B
        // (the shard hot-swap shape).
        let (_, a) = flights.claim(1, None, |_| waiter(&got));
        assert_eq!(flights.cancel(&1), 1);
        let (_, b) = flights.claim(1, None, |_| waiter(&got));
        assert_ne!(a, b, "flight ids never recur");

        // A's stale completer must not resolve B...
        assert_eq!(flights.complete_if(&1, a, 7), 0);
        assert_eq!(flights.cancel_if(&1, a), 0);
        assert_eq!(flights.fail_if(&1, a), 0);
        assert_eq!(flights.pending_id(&1), Some(b), "B still pending");
        // ...while B's own completer does.
        assert_eq!(flights.complete_if(&1, b, 9), 1);
        assert_eq!(*got.lock().unwrap(), vec![None, Some(9)]);

        // fail_if is terminal but not administrative: no `cancelled`.
        let (_, c) = flights.claim(2, None, |_| waiter(&got));
        assert_eq!(flights.fail_if(&2, c), 1);
        let stats = flights.stats();
        assert_eq!(stats.cancelled, 1, "only the explicit cancel counted");
    }

    #[test]
    fn abandoning_every_waiter_cancels_an_unstarted_flight() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let waiter = |sink: &Arc<Mutex<Vec<Option<u32>>>>| -> Waiter<u32> {
            let sink = Arc::clone(sink);
            Box::new(move |v| sink.lock().unwrap().push(v))
        };
        let (_, id) = flights.claim(1, None, |_| waiter(&outcomes));
        let (role, joined) = flights.claim(1, None, |_| waiter(&outcomes));
        assert_eq!((role, joined), (Role::Joined, id));

        // One of two waiters gives up: the flight lives on.
        assert_eq!(flights.abandon(&1, id, false), 0);
        assert!(flights.contains(&1));
        // The last waiter gives up: the flight is cancelled, both
        // (dead) waiters are notified with `None`, and the cancel is
        // counted.
        assert_eq!(flights.abandon(&1, id, false), 2);
        assert!(!flights.contains(&1));
        assert_eq!(*outcomes.lock().unwrap(), vec![None, None]);
        assert_eq!(flights.stats().cancelled, 1);

        // A stale abandon (wrong id) never touches a newer flight.
        let (_, newer) = flights.claim(1, None, |_| waiter(&outcomes));
        assert_eq!(flights.abandon(&1, id, false), 0);
        assert!(flights.contains(&1));
        assert_eq!(flights.complete_if(&1, newer, 5), 1);
    }

    #[test]
    fn abandonment_never_cancels_a_started_flight() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&got);
        let (_, id) = flights.claim(9, None, |_| Box::new(move |v| sink.lock().unwrap().push(v)));
        flights.mark_started(&9, id);
        // Every waiter abandons, but the computation is already
        // running: the flight survives and completes normally (its
        // result still feeds the cache).
        assert_eq!(flights.abandon(&9, id, false), 0);
        assert!(flights.contains(&9));
        assert_eq!(flights.complete_if(&9, id, 7), 1);
        assert_eq!(*got.lock().unwrap(), vec![Some(7)]);
        assert_eq!(flights.stats().cancelled, 0, "no cancel was counted");
    }

    #[test]
    fn sheddable_requires_every_live_waiter_past_its_deadline() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let drop_it = || -> Waiter<u32> { Box::new(|_| {}) };
        let past = Instant::now() - Duration::from_millis(1);
        let future = Instant::now() + Duration::from_secs(3600);
        let now = Instant::now();

        // All-bounded flight whose latest deadline has passed: sheddable.
        let (_, a) = flights.claim(1, Some(past), |_| drop_it());
        assert!(flights.sheddable(&1, a, now));
        // A stale id never matches.
        assert!(!flights.sheddable(&1, a + 1, now));
        // A joiner with a *future* deadline un-sheds it until that
        // deadline passes too.
        flights.claim(1, Some(future), |_| drop_it());
        assert!(!flights.sheddable(&1, a, now));
        assert!(flights.sheddable(&1, a, future + Duration::from_millis(1)));

        // An unbounded waiter pins the flight in the foreground...
        let (_, b) = flights.claim(2, Some(past), |_| drop_it());
        flights.claim(2, None, |_| drop_it());
        assert!(!flights.sheddable(&2, b, now));
        // ...until it abandons (bounded=false restores the count).
        flights.abandon(&2, b, false);
        assert!(flights.sheddable(&2, b, now));

        // A started flight is never shed, and neither is one with no
        // live waiters left (abandonment cancel handles that case).
        flights.mark_started(&2, b);
        assert!(!flights.sheddable(&2, b, now));
        let (_, c) = flights.claim(3, Some(past), |_| drop_it());
        flights.abandon(&3, c, true);
        assert!(!flights.sheddable(&3, c, now), "flight was cancelled");
    }

    #[test]
    fn cancel_fails_waiters_and_counts_separately_from_panics() {
        let flights: SingleFlight<u32, u32> = SingleFlight::new();
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        for key in [1u32, 2, 3] {
            let sink = Arc::clone(&outcomes);
            flights.claim(key, None, |_| {
                Box::new(move |v| sink.lock().unwrap().push((key, v)))
            });
        }
        // Cancel keys > 1 (a "shard removal"), leaving key 1 in flight.
        assert_eq!(flights.cancel_matching(|k| *k > 1), 2);
        assert_eq!(flights.in_flight(), 1);
        assert!(flights.contains(&1));
        let got = outcomes.lock().unwrap().clone();
        assert!(got.contains(&(2, None)) && got.contains(&(3, None)));
        let stats = flights.stats();
        assert_eq!(stats.cancelled, 2);
        assert_eq!(stats.leader_panics, 0, "cancels are not crashes");
        flights.complete(&1, 7);
        assert_eq!(*outcomes.lock().unwrap().last().unwrap(), (1, Some(7)));
    }
}
