//! Per-shard write-ahead durability: the compaction and recovery
//! protocols behind [`crate::TuneService::enable_durability`].
//!
//! On-disk layout under the durability directory, per `(device, op)`
//! shard:
//!
//! * `shard-<dev>-<op>.cache` -- the **base**: the shard's full
//!   decision set in the v2 cache format, rewritten only by compaction
//!   (via temp-file + atomic rename).
//! * `shard-<dev>-<op>.wal` -- the **delta log**: one CRC32-framed
//!   record per cache mutation since the base was written, appended by
//!   the [`isaac_core::WalWriter`] journal attached to the shard's
//!   cache. An interval that published three decisions appends three
//!   short lines instead of rewriting the whole file.
//!
//! Recovered state is `base`, then the log replayed in order with
//! put/delete semantics ([`isaac_core::TuneCache::apply`]). The
//! protocols below are written so that a crash at *any* instant leaves
//! those two files recoverable; the invariants are spelled out in
//! `docs/DURABILITY.md` and exercised point-by-point by the chaos
//! suite (`crates/serve/tests/chaos.rs`).

use crate::service::snapshot_file_name;
use isaac_core::durability::{decode_wal, DurabilityIo, WalWriter};
use isaac_core::{IsaacTuner, OpKind};
use std::io;
use std::path::Path;

/// WAL file name for one `(device, op)` shard: `shard-<device>-<op>.wal`.
pub fn wal_file_name(device: u16, op: OpKind) -> String {
    format!("shard-{device}-{op}.wal")
}

/// Inverse of [`wal_file_name`]; `None` for foreign files.
pub fn parse_wal_file_name(name: &str) -> Option<(u16, OpKind)> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".wal")?;
    let (device, op) = rest.split_once('-')?;
    let device = device.parse().ok()?;
    Some((device, OpKind::parse(op)?))
}

/// Per-shard outcome of [`recover_shard`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardRecovery {
    /// Entries merged from the base cache file.
    pub loaded: usize,
    /// WAL records replayed on top of the base.
    pub replayed: usize,
    /// Torn / corrupt trailing WAL records truncated away.
    pub torn_records: usize,
    /// Malformed or wrong-operation entries skipped (base lines plus
    /// replayed records).
    pub skipped: usize,
}

/// Compact one shard: persist its full decision set as the new base
/// file and shrink the WAL to whatever was appended after the state
/// read. Returns the number of entries persisted.
///
/// Crash safety, step by step:
///
/// 1. The WAL length is sampled under the append lock (`pre_len`): every
///    record at or below it is about to be covered by the new base.
/// 2. The base is written to a temp file and atomically renamed into
///    place -- a crash mid-write leaves the *old* base plus the intact
///    log, which replays to the exact pre-crash state.
/// 3. The WAL keeps only the bytes past `pre_len` (records that raced
///    in during the write), again via temp + rename under the append
///    lock. A crash before this step leaves the new base plus the full
///    old log -- harmless, because replay is idempotent put/delete
///    (see [`isaac_core::TuneCache::apply`]): every key ends at its
///    last-record state, which the new base already has.
///
/// The dirty bit is cleared before the state read (exactly like
/// `IsaacTuner::save_cache`) and restored on any I/O error so the shard
/// is retried next interval.
pub(crate) fn compact_shard(
    io: &dyn DurabilityIo,
    dir: &Path,
    device: u16,
    op: OpKind,
    tuner: &IsaacTuner,
    writer: &WalWriter,
) -> io::Result<usize> {
    let wal = dir.join(wal_file_name(device, op));
    let base = dir.join(snapshot_file_name(device, op));
    let tmp = dir.join(format!("{}.tmp", snapshot_file_name(device, op)));
    let wal_tmp = dir.join(format!("{}.tmp", wal_file_name(device, op)));
    let result = (|| {
        let pre_len = writer.with_appends_excluded(|| io.file_len(&wal).unwrap_or(0));
        tuner.cache().mark_clean();
        let text = tuner.cache_text();
        let entries = text.lines().count().saturating_sub(1);
        io.crash_point("compact.write")?;
        io.write_file(&tmp, text.as_bytes())?;
        io.crash_point("compact.rename")?;
        io.rename(&tmp, &base)?;
        io.crash_point("compact.pre_truncate")?;
        writer.with_appends_excluded(|| -> io::Result<()> {
            let post_len = io.file_len(&wal).unwrap_or(0);
            if post_len > pre_len {
                // Records landed while the base was being written: keep
                // exactly that tail. Temp + rename so a crash mid-write
                // cannot leave a partially-rewritten log (the old full
                // log also replays to the right state; a *prefix of the
                // tail* would not).
                let bytes = io.read(&wal)?;
                io.write_file(&wal_tmp, &bytes[pre_len as usize..])?;
                io.rename(&wal_tmp, &wal)?;
            } else if post_len > 0 {
                io.truncate(&wal, 0)?;
            }
            Ok(())
        })?;
        Ok(entries)
    })();
    if result.is_err() {
        // The bit was cleared optimistically; the state is not durably
        // persisted, so put it back for the next interval's retry.
        tuner.cache().mark_dirty();
    }
    result
}

/// Recover one shard from its base file and WAL: merge the base (if
/// present), truncate the WAL at the first torn or corrupt record
/// (counting what was dropped), and replay the surviving records in
/// order with put/delete semantics. The shard's journal must not be
/// attached yet -- replay must not re-append the log it is reading.
pub(crate) fn recover_shard(
    io: &dyn DurabilityIo,
    dir: &Path,
    device: u16,
    op: OpKind,
    tuner: &IsaacTuner,
) -> io::Result<ShardRecovery> {
    let mut recovery = ShardRecovery::default();
    let base = dir.join(snapshot_file_name(device, op));
    if io.file_len(&base).is_ok() {
        let text = String::from_utf8_lossy(&io.read(&base)?).into_owned();
        let report = tuner.load_cache_text(&text)?;
        recovery.loaded = report.loaded;
        recovery.skipped = report.skipped;
    }
    let wal = dir.join(wal_file_name(device, op));
    let Ok(wal_len) = io.file_len(&wal) else {
        return Ok(recovery);
    };
    let bytes = io.read(&wal)?;
    let decode = decode_wal(&bytes, device);
    recovery.torn_records = decode.torn_records;
    // CRC-valid records from a future format version: skipped, not
    // treated as corruption (see `WalDecode::skipped`).
    recovery.skipped += decode.skipped;
    if (decode.valid_len as u64) < wal_len {
        // Torn-write contract: drop the untrusted tail *on disk* too,
        // so appends resumed after recovery extend a clean log instead
        // of burying garbage mid-file.
        io.truncate(&wal, decode.valid_len as u64)?;
    }
    for record in &decode.records {
        if record.key().op != op {
            recovery.skipped += 1;
            continue;
        }
        tuner.cache().apply(record);
        recovery.replayed += 1;
    }
    Ok(recovery)
}

/// Delete persistence files under `dir` whose `(device, op)` is not in
/// `keep` -- plus any `.tmp` leftovers from a crashed compaction.
/// Returns how many files were removed; individual deletion failures
/// are skipped (the next sweep retries them).
pub(crate) fn gc_orphans(
    io: &dyn DurabilityIo,
    dir: &Path,
    keep: impl Fn(u16, OpKind) -> bool,
) -> usize {
    let Ok(names) = io.read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for name in names {
        let stale = if let Some(stem) = name.strip_suffix(".tmp") {
            // A temp file is only ever live inside a compaction call;
            // anything surviving to a sweep is a crash leftover.
            crate::service::parse_snapshot_file_name(stem).is_some()
                || parse_wal_file_name(stem).is_some()
        } else if let Some((device, op)) = crate::service::parse_snapshot_file_name(&name) {
            !keep(device, op)
        } else if let Some((device, op)) = parse_wal_file_name(&name) {
            !keep(device, op)
        } else {
            false
        };
        if stale && io.remove_file(&dir.join(&name)).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_file_names_roundtrip() {
        for (device, op) in [(0, OpKind::Gemm), (9, OpKind::Conv), (65535, OpKind::Gemm)] {
            let name = wal_file_name(device, op);
            assert_eq!(parse_wal_file_name(&name), Some((device, op)));
        }
        assert_eq!(parse_wal_file_name("shard-1-gemm.cache"), None);
        assert_eq!(parse_wal_file_name("shard-x-gemm.wal"), None);
        assert_eq!(parse_wal_file_name("journal.wal"), None);
    }
}
