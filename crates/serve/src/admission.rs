//! Per-tenant admission control for the async front door.
//!
//! Every miss that reaches the single-flight path is first offered to
//! the [`Admission`] table under the submitting tenant
//! ([`crate::SubmitOptions::tenant`]). A tenant's *in-flight* count --
//! pending tickets whose cells have not resolved yet -- is bounded by
//! its quota: an over-quota submit resolves immediately to
//! [`crate::Served::Rejected`] **without touching the key's flight**,
//! so a within-quota waiter for the same key still leads or joins the
//! tune normally. Cache hits never consult admission: quotas guard the
//! expensive tuning backend, not the O(1) cached path.
//!
//! The in-flight count is released exactly once per admitted ticket,
//! when its completion cell resolves -- by decision, failure, *or*
//! deadline expiry -- so a tenant that keeps abandoning slow queries
//! gets its quota back as fast as its deadlines fire, not when the
//! tunes eventually land.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A snapshot of one tenant's admission counters
/// ([`crate::TuneService::tenant_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant these counters belong to.
    pub tenant: u16,
    /// Misses offered to admission under this tenant (cache hits and
    /// shard refusals are served before admission and not counted).
    pub submitted: u64,
    /// Misses admitted: a pending ticket was issued and the tenant's
    /// in-flight count charged.
    pub admitted: u64,
    /// Misses rejected over quota ([`crate::Served::Rejected`]).
    pub rejected: u64,
    /// Admitted tickets that resolved [`crate::Served::TimedOut`].
    pub timed_out: u64,
    /// Admitted tickets still unresolved right now.
    pub in_flight: u64,
}

/// One tenant's live counters. Ticket cells hold an `Arc` of this and
/// release the in-flight charge when they resolve.
#[derive(Debug, Default)]
pub(crate) struct TenantSlot {
    tenant: u16,
    submitted: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    in_flight: AtomicU64,
}

impl TenantSlot {
    /// Release the in-flight charge of one admitted ticket (called
    /// exactly once, when its cell resolves).
    pub fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Count a deadline expiry of one of this tenant's tickets.
    pub fn note_timeout(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub fn stats(&self) -> TenantStats {
        TenantStats {
            tenant: self.tenant,
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Relaxed),
        }
    }
}

#[derive(Debug, Default)]
struct AdmissionState {
    /// In-flight bound applied to tenants without an override; `None`
    /// (the default) admits everything.
    default_quota: Option<u64>,
    /// Per-tenant overrides of the default quota.
    overrides: HashMap<u16, u64>,
    /// Lazily created per-tenant counters (BTreeMap so stats snapshots
    /// come out in tenant order).
    tenants: BTreeMap<u16, Arc<TenantSlot>>,
}

/// The admission table; see the module docs.
#[derive(Debug, Default)]
pub(crate) struct Admission {
    state: Mutex<AdmissionState>,
    rejected_total: AtomicU64,
}

impl Admission {
    /// Set the in-flight quota applied to every tenant without an
    /// override; `None` admits everything (the default).
    pub fn set_default_quota(&self, quota: Option<u64>) {
        self.state.lock().expect("admission poisoned").default_quota = quota;
    }

    /// Override (or, with `None`, clear the override of) one tenant's
    /// quota.
    pub fn set_tenant_quota(&self, tenant: u16, quota: Option<u64>) {
        let mut state = self.state.lock().expect("admission poisoned");
        match quota {
            Some(q) => {
                state.overrides.insert(tenant, q);
            }
            None => {
                state.overrides.remove(&tenant);
            }
        }
    }

    /// Offer one miss to admission: charge the tenant's in-flight count
    /// and hand back its slot (released when the ticket's cell
    /// resolves), or reject over quota. The check-and-charge runs under
    /// the table lock, so concurrent submits can never overshoot the
    /// quota; releases are lock-free atomics and only ever free slots.
    pub fn admit(&self, tenant: u16) -> Result<Arc<TenantSlot>, ()> {
        let mut state = self.state.lock().expect("admission poisoned");
        let quota = state
            .overrides
            .get(&tenant)
            .copied()
            .or(state.default_quota);
        let slot = Arc::clone(state.tenants.entry(tenant).or_insert_with(|| {
            Arc::new(TenantSlot {
                tenant,
                ..TenantSlot::default()
            })
        }));
        // Check-and-charge stays under the table lock (concurrent
        // releases only free slots, so holding it here is what makes
        // the quota an upper bound under concurrent submits).
        slot.submitted.fetch_add(1, Ordering::Relaxed);
        if quota.is_some_and(|q| slot.in_flight.load(Ordering::Relaxed) >= q) {
            slot.rejected.fetch_add(1, Ordering::Relaxed);
            self.rejected_total.fetch_add(1, Ordering::Relaxed);
            return Err(());
        }
        slot.in_flight.fetch_add(1, Ordering::Relaxed);
        slot.admitted.fetch_add(1, Ordering::Relaxed);
        Ok(slot)
    }

    /// Total over-quota rejections across all tenants.
    pub fn rejected_total(&self) -> u64 {
        self.rejected_total.load(Ordering::Relaxed)
    }

    /// Counters of every tenant seen so far, in tenant order.
    pub fn stats(&self) -> Vec<TenantStats> {
        self.state
            .lock()
            .expect("admission poisoned")
            .tenants
            .values()
            .map(|slot| slot.stats())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_by_default_and_charges_in_flight() {
        let adm = Admission::default();
        let a = adm.admit(3).expect("no quota set");
        let b = adm.admit(3).expect("no quota set");
        assert_eq!(a.stats().in_flight, 2);
        a.release();
        b.release();
        let stats = adm.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(
            stats[0],
            TenantStats {
                tenant: 3,
                submitted: 2,
                admitted: 2,
                in_flight: 0,
                ..Default::default()
            }
        );
    }

    #[test]
    fn quota_rejects_and_release_reopens() {
        let adm = Admission::default();
        adm.set_default_quota(Some(1));
        let slot = adm.admit(0).expect("first admit fits");
        assert!(adm.admit(0).is_err(), "over quota");
        assert_eq!(adm.rejected_total(), 1);
        slot.release();
        assert!(adm.admit(0).is_ok(), "released slot reopens the quota");
    }

    #[test]
    fn overrides_beat_the_default_and_clear_back() {
        let adm = Admission::default();
        adm.set_default_quota(Some(0));
        assert!(adm.admit(1).is_err(), "default quota 0 rejects");
        adm.set_tenant_quota(1, Some(2));
        assert!(adm.admit(1).is_ok(), "override admits");
        adm.set_tenant_quota(1, None);
        assert!(adm.admit(1).is_err(), "cleared override falls back");
        // Other tenants were never affected by tenant 1's override.
        adm.set_default_quota(None);
        assert!(adm.admit(2).is_ok());
    }
}
