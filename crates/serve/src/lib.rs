//! Sharded, async-first serving front-end for ISAAC tuners.
//!
//! `isaac-core`'s query engine answers one tuning query on one tuner;
//! this crate turns a set of trained tuners into a **service**:
//!
//! * [`TuneService`] is the front door: [`TuneService::submit`] returns
//!   a [`TuneTicket`] immediately (hits resolve inline, misses enqueue
//!   on a worker pool), and tickets are pollable -- `try_get`, blocking
//!   `wait`, or a [`std::task::Waker`]-compatible `poll` / `Future`
//!   impl, so one OS thread can multiplex many in-flight queries
//!   without this crate depending on an executor;
//! * [`SingleFlight`] coalesces concurrent misses for the same
//!   [`isaac_core::TuneKey`] by registering waker/callback waiters:
//!   exactly one cold tune runs per contended key, and every ticket on
//!   the key receives the identical decision;
//! * shard lifecycle is part of the API: [`TuneService::add_shard`] /
//!   [`TuneService::remove_shard`] / [`TuneService::replace_shard`]
//!   hot-swap devices (a removed shard *fails* its pending tickets
//!   rather than stranding them), [`TuneService::snapshot_all`] /
//!   [`TuneService::restore_all`] persist and reload every shard's
//!   decision cache, and [`TuneService::warm_start`] seeds a fresh
//!   shard from a neighbour's decisions;
//! * the fleet maintains its own cache lifecycle:
//!   [`TuneService::enable_snapshots`] persists dirty shards on an
//!   interval (plus a final flush on shutdown),
//!   [`TuneService::submit_with`] bounds a ticket with a deadline
//!   ([`Served::TimedOut`]), fully-dropped pre-start tickets cancel
//!   their queued job, and shard caches evict cost-aware
//!   ([`isaac_core::EvictionPolicy`]) so expensive-to-re-tune
//!   decisions survive capacity pressure;
//! * the front door is **SLO-aware**: per-tenant admission quotas
//!   ([`TuneService::set_admission_quota`], [`SubmitOptions::tenant`],
//!   [`Served::Rejected`]) bound each tenant's misses in flight,
//!   queued tunes whose waiters all timed out are shed to a
//!   lower-priority background lane, and
//!   [`TuneService::prewarm_hot`] pre-seeds neighbour shards with
//!   trending-hot decisions; the [`load`] module replays deterministic
//!   multi-tenant traces against all of it;
//! * the fleet **self-heals**: a circuit breaker per shard
//!   ([`TuneService::breaker_state`], [`BreakerConfig`]) and a
//!   poison-key quarantine ([`TuneService::is_quarantined`],
//!   [`QuarantineConfig`]) keep a sick fleet answering with a
//!   model-free heuristic ([`Served::Degraded`] -- never cached or
//!   journaled) while background repairs upgrade each degraded key to
//!   a real tuned decision; faults inject deterministically through
//!   the [`TuneFault`] seam ([`FaultTuner`]) for the seeded serving
//!   chaos suite;
//! * [`TunerRouter`] survives as the deprecated blocking facade from
//!   PR 2 (`submit(q)` == `service.submit(q).wait()`), kept so existing
//!   callers compile while they migrate.
//!
//! Decision caches are the size-bounded LRU [`isaac_core::TuneCache`]s
//! owned by each tuner; `cargo bench -p isaac-bench --bench serving`
//! tracks batched throughput, in-flight multiplexing and queue latency
//! in `BENCH_serving.json`. See `crates/serve/README.md` for the
//! architecture sketch and the migration notes.

pub(crate) mod admission;
pub mod batch;
pub mod durability;
pub mod fault;
pub mod health;
pub mod load;
pub mod router;
pub mod service;
pub mod single_flight;
pub mod stats;
pub mod ticket;
pub(crate) mod workers;

pub use admission::TenantStats;
pub use batch::{plan, BatchPlan, Decision, Query, QueryShape, Served};
pub use durability::{parse_wal_file_name, wal_file_name};
pub use fault::{FaultKind, FaultTuner, TuneFault};
pub use health::{BreakerConfig, BreakerState, QuarantineConfig};
pub use load::{LoadReport, LoadRequest, ReplayOptions, TenantLoad, Trace, TraceConfig};
pub use router::TunerRouter;
pub use service::{
    parse_snapshot_file_name, snapshot_file_name, RetryPolicy, SnapshotReport, SubmitOptions,
    TuneService,
};
pub use single_flight::{FlightId, FlightStats, Role, SingleFlight, Waiter};
pub use stats::{RouterStats, ServiceStats};
pub use ticket::TuneTicket;
