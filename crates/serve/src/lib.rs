//! Sharded serving front-end for ISAAC tuners.
//!
//! `isaac-core`'s query engine answers one tuning query on one tuner;
//! this crate turns a set of trained tuners into a **service**:
//!
//! * [`TunerRouter`] shards tuners per device ordinal behind one front
//!   door and routes queries by `(device, operation)`;
//! * [`TunerRouter::submit_batch`] accepts batched submissions,
//!   deduplicates identical queries inside the batch, and fans the
//!   unique keys out across cores;
//! * [`SingleFlight`] coalesces concurrent misses for the same
//!   [`isaac_core::TuneKey`]: exactly one cold tune runs per contended
//!   key, the losers block on the winner's result;
//! * [`TunerRouter::warm_start`] seeds a fresh shard from a neighbour
//!   shard's decisions, re-benchmarking only the top-k instead of
//!   cold-tuning every shape.
//!
//! Decision caches are the size-bounded LRU [`isaac_core::TuneCache`]s
//! owned by each tuner; `cargo bench -p isaac-bench --bench serving`
//! tracks batched throughput, dedup ratio and warm-start speedup in
//! `BENCH_serving.json`. See `crates/serve/README.md` for the
//! architecture sketch.

pub mod batch;
pub mod router;
pub mod single_flight;
pub mod stats;

pub use batch::{plan, BatchPlan, Decision, Query, QueryShape, Served};
pub use router::TunerRouter;
pub use single_flight::{FlightStats, Role, SingleFlight};
pub use stats::RouterStats;
