//! End-to-end properties of the ticket-based async front door:
//!
//! 1. **single-thread multiplexing** -- one OS thread submits 64 misses
//!    and drives them all to completion through `TuneTicket::poll`,
//!    with exactly one cold tune per unique contended key (the
//!    single-flight invariant, preserved under the waker design);
//! 2. **snapshot/restore** -- `snapshot_all` on one service,
//!    `restore_all` into a freshly built one: every snapshotted key is
//!    a cache hit afterwards, zero cold tunes;
//! 3. **shard lifecycle** -- removing or replacing a shard fails its
//!    pending tickets (`Served::Failed`) instead of stranding them, and
//!    drops its queued jobs;
//! 4. **leader panics** -- a panicking tune (injected through the
//!    `TuneFault` seam) is retried and recorded in
//!    `FlightStats::leader_panics`; past the retry budget the key is
//!    quarantined and the flight resolves `Served::Degraded`, healing
//!    via background repair;
//! 5. **ticket hygiene** -- dropping a ticket before completion leaks
//!    no flight entry and never wakes the dead ticket's waker.

use isaac_core::{EvictionPolicy, IsaacTuner, OpKind, TrainOptions};
use isaac_device::specs::{gtx980ti, tesla_p100};
use isaac_device::{DType, DeviceSpec};
use isaac_gen::shapes::GemmShape;
use isaac_serve::{
    Decision, FaultKind, FaultTuner, QuarantineConfig, Query, Served, SnapshotReport,
    SubmitOptions, TuneService,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

/// Train one small GEMM model, once per process, and hand out cheap
/// clones via the text serialization (training dominates test time;
/// loading is milliseconds).
fn shared_model_path() -> &'static Path {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let tuner = IsaacTuner::train(
            tesla_p100(),
            OpKind::Gemm,
            TrainOptions {
                samples: 1_500,
                hidden: vec![16, 16],
                epochs: 2,
                top_k: 10,
                ..Default::default()
            },
        );
        let path = std::env::temp_dir().join("isaac_service_shared_model.txt");
        tuner.save(&path).expect("save shared model");
        path
    })
}

fn fresh_tuner(spec: DeviceSpec) -> IsaacTuner {
    IsaacTuner::load(shared_model_path(), spec, OpKind::Gemm).expect("load shared model")
}

fn gemm_query(device: u16, m: u32, n: u32, k: u32) -> Query {
    Query::gemm(device, GemmShape::new(m, n, k, "N", "T", DType::F32))
}

/// Spin (with a timeout) until an asynchronous gauge settles.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// A waker that flags a condvar: the poll loop sleeps on it between
/// rounds instead of spinning.
#[derive(Default)]
struct PollNotify {
    flagged: Mutex<bool>,
    cv: Condvar,
}

impl Wake for PollNotify {
    fn wake(self: Arc<Self>) {
        *self.flagged.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

impl PollNotify {
    /// Sleep until woken (or a short timeout: a wake that raced the
    /// previous flag reset must not deadlock the loop -- the caller
    /// re-polls anyway).
    fn wait(&self) {
        let mut flagged = self.flagged.lock().unwrap();
        while !*flagged {
            let (guard, timeout) = self
                .cv
                .wait_timeout(flagged, Duration::from_millis(200))
                .unwrap();
            flagged = guard;
            if timeout.timed_out() {
                break;
            }
        }
        *flagged = false;
    }
}

/// A waker that only counts how often it fires.
#[derive(Default)]
struct CountingWake {
    wakes: AtomicUsize,
}

impl Wake for CountingWake {
    fn wake(self: Arc<Self>) {
        self.wakes.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn one_thread_drives_64_in_flight_misses_via_poll() {
    const UNIQUE: u32 = 16;
    const TICKETS: usize = 64;
    let service = TuneService::with_workers(2);
    service.add_shard(0, fresh_tuner(tesla_p100()));

    // Pause the pool so the whole burst is provably in flight at once.
    service.pause();
    let queries: Vec<Query> = (0..TICKETS)
        .map(|i| gemm_query(0, 96 + 16 * (i as u32 % UNIQUE), 64, 48))
        .collect();
    let tickets: Vec<_> = queries.iter().map(|q| service.submit(q)).collect();
    let gauges = service.service_stats();
    assert_eq!(gauges.open_tickets, TICKETS as u64, "all misses pending");
    assert_eq!(gauges.peak_open_tickets, TICKETS as u64);
    assert_eq!(service.in_flight(), UNIQUE as usize, "one flight per key");
    assert!(tickets.iter().all(|t| t.try_get().is_none()));
    service.resume();

    // Mini executor: THIS thread multiplexes all 64 tickets by polling
    // with a waker; no other thread of ours ever blocks on a decision.
    let notify = Arc::new(PollNotify::default());
    let waker = Waker::from(Arc::clone(&notify));
    let mut cx = Context::from_waker(&waker);
    let mut decisions: Vec<Option<Decision>> = (0..TICKETS).map(|_| None).collect();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let mut unresolved = 0;
        for (slot, ticket) in tickets.iter().enumerate() {
            if decisions[slot].is_none() {
                match ticket.poll_decision(&mut cx) {
                    Poll::Ready(d) => decisions[slot] = Some(d),
                    Poll::Pending => unresolved += 1,
                }
            }
        }
        if unresolved == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "poll loop timed out");
        notify.wait();
    }

    // THE invariant, now waker-driven: exactly one cold tune per unique
    // contended key, everyone else coalesced.
    let stats = service.stats();
    assert_eq!(stats.queries, TICKETS as u64);
    assert_eq!(stats.cold_tunes, UNIQUE as u64);
    let tuned = decisions
        .iter()
        .flatten()
        .filter(|d| d.served == Served::Tuned)
        .count();
    let coalesced = decisions
        .iter()
        .flatten()
        .filter(|d| d.served == Served::Coalesced)
        .count();
    assert_eq!(tuned, UNIQUE as usize, "one Tuned decision per key");
    assert_eq!(coalesced, TICKETS - UNIQUE as usize);

    // Every ticket on a key resolves to the bit-identical choice (the
    // first 16 slots are the first occurrences of the 16 keys).
    for (slot, decision) in decisions.iter().enumerate() {
        let d = decision.as_ref().expect("resolved");
        let first = decisions[slot % UNIQUE as usize].as_ref().unwrap();
        assert!(d.choice.is_some(), "slot {slot} got a kernel");
        assert_eq!(d.choice, first.choice, "slot {slot} identical to leader");
    }

    // Nothing leaks once the dust settles.
    assert_eq!(service.in_flight(), 0);
    assert_eq!(service.service_stats().open_tickets, 0);
    assert!(service.service_stats().queue_wait_s_total >= 0.0);
}

#[test]
fn snapshot_restore_roundtrips_every_shard() {
    let dir = std::env::temp_dir().join("isaac_service_snapshot_test");
    let _ = std::fs::remove_dir_all(&dir);

    let service = TuneService::new();
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.add_shard(1, fresh_tuner(gtx980ti()));
    let queries = [
        gemm_query(0, 96, 64, 48),
        gemm_query(0, 256, 64, 512),
        gemm_query(1, 96, 64, 48),
    ];
    let originals: Vec<Decision> = queries.iter().map(|q| service.submit(q).wait()).collect();
    assert!(originals.iter().all(|d| d.choice.is_some()));

    let snap = service.snapshot_all(&dir).expect("snapshot");
    assert_eq!(
        snap,
        SnapshotReport {
            files: 2,
            entries: 3,
            ..Default::default()
        },
        "one device-tagged cache file per shard"
    );

    // A brand-new service (fresh tuners, empty caches) restores the
    // fleet and serves the snapshotted keys without a single cold tune.
    let restored = TuneService::new();
    restored.add_shard(0, fresh_tuner(tesla_p100()));
    restored.add_shard(1, fresh_tuner(gtx980ti()));
    let report = restored.restore_all(&dir).expect("restore");
    assert_eq!(
        report,
        SnapshotReport {
            files: 2,
            entries: 3,
            ..Default::default()
        }
    );
    for (q, original) in queries.iter().zip(&originals) {
        let d = restored.submit(q).wait();
        assert_eq!(d.served, Served::Cache, "restored key must be a hit");
        assert_eq!(
            d.choice.as_ref().map(|c| c.config),
            original.choice.as_ref().map(|c| c.config),
            "restored decision selects the same kernel"
        );
    }
    assert_eq!(restored.stats().cold_tunes, 0, "restore means no re-tuning");

    // Snapshots for unregistered shards are reported, not dropped
    // silently.
    let partial = TuneService::new();
    partial.add_shard(0, fresh_tuner(tesla_p100()));
    let report = partial.restore_all(&dir).expect("partial restore");
    assert_eq!(report.files, 1);
    assert_eq!(report.unmatched, 1, "device 1 snapshot has no shard");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn removed_shard_fails_pending_tickets_instead_of_stranding_them() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.pause();

    let query = gemm_query(0, 128, 64, 96);
    let leader = service.submit(&query);
    let joiner = service.submit(&query);
    assert!(leader.try_get().is_none() && joiner.try_get().is_none());

    let removed = service.remove_shard(0, OpKind::Gemm).expect("registered");
    // Both tickets resolve immediately -- failed, not stranded -- even
    // though the worker pool is paused and the job still sits queued.
    for ticket in [&leader, &joiner] {
        let d = ticket.wait();
        assert_eq!(d.served, Served::Failed);
        assert_eq!(d.choice, None);
    }
    assert_eq!(service.stats().failed, 2);
    assert_eq!(service.flight_stats().cancelled, 1);
    assert_eq!(service.in_flight(), 0);

    // New queries are refused, the orphaned job is dropped (counted),
    // and the removed tuner is still usable stand-alone.
    service.resume();
    assert_eq!(service.submit(&query).wait().served, Served::NoShard);
    wait_until("the orphaned job to be dropped", || {
        service.service_stats().jobs_cancelled == 1
    });
    assert_eq!(removed.cache_len(), 0, "nothing was tuned");

    // Re-adding a shard brings the device back to life.
    service.add_shard(0, fresh_tuner(tesla_p100()));
    let d = service.submit(&query).wait();
    assert_eq!(d.served, Served::Tuned);
    assert!(d.choice.is_some());
}

#[test]
fn replacing_a_shard_fails_in_flight_queries_and_serves_new_ones() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.pause();
    let stale = service.submit(&gemm_query(0, 160, 64, 96));

    // Hot-swap the device: the in-flight query must not come back with
    // a decision tuned for hardware that no longer exists.
    let old = service.replace_shard(0, fresh_tuner(gtx980ti()));
    assert!(old.is_some(), "the replaced tuner is handed back");
    assert_eq!(stale.wait().served, Served::Failed);

    service.resume();
    let fresh = service.submit(&gemm_query(0, 160, 64, 96)).wait();
    assert_eq!(fresh.served, Served::Tuned);
    assert!(fresh.choice.is_some());
}

#[test]
fn stale_jobs_from_a_swapped_shard_never_serve_the_new_flight() {
    // Regression: completion targets (key, flight id), not the key
    // alone. A job queued before a hot-swap must neither complete the
    // re-submitted key's new flight nor publish a decision computed on
    // the replaced tuner.
    let service = TuneService::with_workers(1);
    let old = service.add_shard(0, fresh_tuner(tesla_p100()));
    service.pause();

    let query = gemm_query(0, 288, 64, 96);
    let stale = service.submit(&query); // job J1 on the old tuner
    let replacement = service.replace_shard(0, fresh_tuner(tesla_p100()));
    assert!(replacement.is_some());
    assert_eq!(stale.wait().served, Served::Failed);
    let fresh = service.submit(&query); // new flight, job J2 on the new tuner
    let new_tuner = service.shard_tuner(0, OpKind::Gemm).expect("new shard");

    service.resume();
    let d = fresh.wait();
    assert_eq!(d.served, Served::Tuned, "the new flight resolves normally");
    assert!(d.choice.is_some());
    // J1 was dropped, not run: the replaced tuner tuned nothing and the
    // decision lives in the new tuner's cache.
    assert_eq!(old.cache_len(), 0, "stale job never ran on the old tuner");
    assert_eq!(new_tuner.cache_len(), 1);
    wait_until("the stale job to be dropped", || {
        service.service_stats().jobs_cancelled == 1
    });
    assert_eq!(service.stats().cold_tunes, 1);
}

#[test]
fn tune_panics_are_retried_recorded_and_eventually_degrade_the_flight() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    // Fast repair backoff so the quarantined key heals within the test.
    service.set_quarantine_config(QuarantineConfig {
        ttl: Duration::from_millis(10),
        max_ttl: Duration::from_millis(100),
    });
    let fault = Arc::new(FaultTuner::new());
    service.set_tune_fault(Some(fault.clone()));

    // One injected panic: the retry lands the tune, every ticket
    // resolves, and the panic is visible in the flight stats (the
    // abort+retry used to be invisible there).
    service.pause();
    let query = gemm_query(0, 192, 64, 96);
    fault.fault_key(query.key(), &[FaultKind::Panic]);
    let leader = service.submit(&query);
    let joiner = service.submit(&query);
    service.resume();
    let (a, b) = (leader.wait(), joiner.wait());
    assert_eq!(a.served, Served::Tuned, "retry ran the cold tune");
    assert_eq!(b.served, Served::Coalesced);
    assert!(a.choice.is_some());
    assert_eq!(a.choice, b.choice, "the retried flight fans out normally");
    assert_eq!(service.flight_stats().leader_panics, 1);
    assert_eq!(service.service_stats().tune_retries, 1);
    assert_eq!(service.stats().cold_tunes, 1);

    // A tune that never stops panicking exhausts the retry budget; the
    // key is quarantined and the flight resolves with the model-free
    // heuristic instead of failing its tickets.
    let doomed_query = gemm_query(0, 224, 64, 96);
    fault.poison_key(doomed_query.key(), FaultKind::Panic);
    let doomed = service.submit(&doomed_query);
    let d = doomed.wait();
    assert_eq!(d.served, Served::Degraded);
    assert!(d.choice.is_some(), "the heuristic stood in");
    assert_eq!(service.flight_stats().leader_panics, 1 + 3, "3 attempts");
    assert_eq!(service.service_stats().retry_exhausted, 1);
    assert_eq!(service.stats().failed, 0, "degraded is not failed");
    assert_eq!(service.stats().quarantines, 1);
    assert!(service.is_quarantined(&doomed_query.key()));

    // While quarantined, resubmits answer instantly from the ledger --
    // same heuristic choice, no retry burn.
    let attempts_before = fault.attempts(&doomed_query.key());
    let parked = service.submit(&doomed_query).wait();
    assert_eq!(parked.served, Served::Degraded);
    assert_eq!(parked.choice, d.choice, "memoized heuristic");
    assert_eq!(fault.attempts(&doomed_query.key()), attempts_before);

    // Healing the seam lets the background repair land a real tune and
    // discharge the quarantine; the key then serves from the cache.
    fault.heal(&doomed_query.key());
    wait_until("the repair to upgrade the cache", || {
        service.stats().repair_upgrades == 1
    });
    assert!(!service.is_quarantined(&doomed_query.key()));
    let healed = service.submit(&doomed_query).wait();
    assert_eq!(healed.served, Served::Cache);
    assert!(healed.choice.is_some());
}

#[test]
fn dropped_tickets_neither_leak_flights_nor_wake_dead_wakers() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.pause();

    let query = gemm_query(0, 256, 64, 96);
    let kept = service.submit(&query);
    let doomed = service.submit(&query);
    assert_eq!(service.service_stats().open_tickets, 2);

    // The doomed ticket registers a waker, then dies before completion.
    let counting = Arc::new(CountingWake::default());
    let waker = Waker::from(Arc::clone(&counting));
    let mut cx = Context::from_waker(&waker);
    assert!(doomed.poll_decision(&mut cx).is_pending());
    drop(doomed);

    service.resume();
    let d = kept.wait();
    assert_eq!(d.served, Served::Tuned);
    assert!(d.choice.is_some());

    // The flight completed and freed everything: no leaked entry, and
    // the dropped ticket's completion slot resolves too (the fan-out to
    // the other waiters finishes moments after the first waiter wakes).
    assert_eq!(service.in_flight(), 0, "no leaked flight entry");
    wait_until("the dropped ticket's slot to resolve", || {
        service.service_stats().open_tickets == 0
    });
    assert_eq!(counting.wakes.load(Ordering::SeqCst), 0, "dead waker slept");

    // The decision still made it into the cache for future callers.
    assert_eq!(service.submit(&query).wait().served, Served::Cache);
}

#[test]
fn contended_key_resolves_every_ticket_bit_identically() {
    let service = TuneService::with_workers(2);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.pause();
    let query = gemm_query(0, 512, 64, 128);
    let tickets: Vec<_> = (0..64).map(|_| service.submit(&query)).collect();
    assert_eq!(service.in_flight(), 1, "64 tickets, one flight");
    service.resume();

    let first = tickets[0].wait();
    assert_eq!(first.served, Served::Tuned);
    for ticket in &tickets[1..] {
        let d = ticket.wait();
        assert_eq!(d.served, Served::Coalesced);
        assert_eq!(d.choice, first.choice, "bit-identical fan-out");
    }
    assert_eq!(
        service.stats().cold_tunes,
        1,
        "one cold tune for 64 tickets"
    );
}

#[test]
fn timed_out_waiter_does_not_poison_the_flight_for_others() {
    // The PR 5 acceptance shape: a deadline-bounded waiter gives up,
    // but a concurrent unbounded waiter on the same key still receives
    // the tuned decision, and the decision still reaches the cache.
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.pause();

    let query = gemm_query(0, 352, 64, 96);
    let bounded = service.submit_with(
        &query,
        &SubmitOptions {
            deadline: Some(Duration::from_millis(20)),
            ..SubmitOptions::default()
        },
    );
    let unbounded = service.submit(&query);

    // The pool is paused, so the deadline expires first.
    let d = bounded.wait();
    assert_eq!(d.served, Served::TimedOut);
    assert_eq!(d.choice, None);
    assert_eq!(service.service_stats().timed_out, 1);
    // Expiry is sticky and ticket-local: this ticket stays timed out
    // even after the flight lands.
    assert_eq!(bounded.try_get().map(|d| d.served), Some(Served::TimedOut));

    service.resume();
    let d = unbounded.wait();
    assert_eq!(
        d.served,
        Served::Coalesced,
        "the unbounded waiter joined the bounded leader's flight"
    );
    assert!(d.choice.is_some(), "the tune still landed for it");
    assert_eq!(service.stats().cold_tunes, 1, "exactly one tune ran");
    assert_eq!(bounded.wait().served, Served::TimedOut, "still sticky");

    // The flight was not poisoned: the decision is in the cache now.
    assert_eq!(service.submit(&query).wait().served, Served::Cache);
    // `failed` counts real failures, not deadline expiries.
    assert_eq!(service.stats().failed, 0);
}

#[test]
fn wait_timeout_bounds_a_ticket_without_a_baked_in_deadline() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.pause();

    let ticket = service.submit(&gemm_query(0, 416, 64, 96));
    let t0 = Instant::now();
    let d = ticket.wait_timeout(Duration::from_millis(15));
    assert!(t0.elapsed() >= Duration::from_millis(15));
    assert_eq!(d.served, Served::TimedOut);
    assert_eq!(service.service_stats().timed_out, 1);
    service.resume();

    // A ticket that resolves in time is unaffected by the bound.
    let quick = service.submit(&gemm_query(0, 448, 64, 96));
    let d = quick.wait_timeout(Duration::from_secs(60));
    assert_eq!(d.served, Served::Tuned);
    assert!(d.choice.is_some());
    assert_eq!(service.service_stats().timed_out, 1, "no spurious expiry");
}

#[test]
fn fully_dropped_prestart_tickets_cancel_the_queued_job() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.pause();

    let query = gemm_query(0, 480, 64, 96);
    let leader = service.submit(&query);
    let joiner = service.submit(&query);
    assert_eq!(service.in_flight(), 1);

    // One holder gives up: the flight lives (the other still waits).
    drop(leader);
    assert_eq!(service.flight_stats().cancelled, 0);
    assert_eq!(service.in_flight(), 1);

    // The last holder gives up pre-start: the flight is cancelled
    // through the (key, FlightId) path and the queued job never tunes.
    drop(joiner);
    assert_eq!(service.flight_stats().cancelled, 1);
    assert_eq!(service.in_flight(), 0);

    service.resume();
    wait_until("the orphaned job to be dropped", || {
        service.service_stats().jobs_cancelled == 1
    });
    assert_eq!(service.stats().cold_tunes, 0, "nobody tuned for nobody");
    let tuner = service.shard_tuner(0, OpKind::Gemm).expect("shard");
    assert_eq!(tuner.cache_len(), 0);
    // The gauge stayed truthful: both dead tickets' cells resolved.
    assert_eq!(service.service_stats().open_tickets, 0);

    // The key is not poisoned: a live submission tunes normally.
    let d = service.submit(&query).wait();
    assert_eq!(d.served, Served::Tuned);
    assert!(d.choice.is_some());
}

#[test]
fn tickets_dropped_after_the_tune_starts_do_not_cancel_it() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));

    // Submit unpaused and give the worker a moment to pick the job up,
    // then drop the only ticket mid-tune: the flight must complete and
    // publish (the work is paid for either way).
    let query = gemm_query(0, 544, 64, 96);
    let ticket = service.submit(&query);
    wait_until("the job to leave the queue", || {
        service.service_stats().queue_depth == 0
    });
    drop(ticket);
    wait_until("the tune to land in the cache", || {
        service
            .shard_tuner(0, OpKind::Gemm)
            .is_some_and(|t| t.cache_len() == 1)
    });
    assert_eq!(service.stats().cold_tunes, 1);
    assert_eq!(service.submit(&query).wait().served, Served::Cache);
}

#[test]
fn background_snapshotter_persists_dirty_shards_and_restores_after_a_crash() {
    let dir = std::env::temp_dir().join("isaac_service_bg_snapshot_test");
    let _ = std::fs::remove_dir_all(&dir);

    let service = TuneService::new();
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.enable_snapshots(&dir, Duration::from_millis(20));

    // Two decisions land; the next idle interval persists them.
    let persisted = [gemm_query(0, 96, 64, 48), gemm_query(0, 256, 64, 512)];
    for q in &persisted {
        assert!(service.submit(q).wait().choice.is_some());
    }
    // An early interval may catch the cache between the two tunes (and
    // report one entry); the shard re-dirties, so a later interval is
    // guaranteed to persist both.
    wait_until("the interval snapshot to cover both decisions", || {
        service.last_snapshot().is_some_and(|r| r.entries == 2)
    });
    let last = service.last_snapshot().expect("a background report");
    assert_eq!(last.files, 1, "one dirty shard was written");
    assert!(service.stats().snapshots >= 1);
    assert_eq!(service.stats().snapshot_errors, 0);

    // Quiescence: with nothing dirty, further intervals write nothing.
    let settled = service.stats().snapshots;
    std::thread::sleep(Duration::from_millis(80));
    assert_eq!(
        service.stats().snapshots,
        settled,
        "clean shards are skipped, not rewritten every interval"
    );

    // Simulate a crash: stop the snapshotter (no final flush), then
    // tune one more shape -- the tail of work since the last interval.
    service.disable_snapshots();
    let lost = gemm_query(0, 128, 128, 128);
    assert!(service.submit(&lost).wait().choice.is_some());
    drop(service);

    // The restarted fleet serves everything up to the last snapshot
    // interval with zero cold tunes; only the tail is gone.
    let restored = TuneService::new();
    restored.add_shard(0, fresh_tuner(tesla_p100()));
    let report = restored.restore_all(&dir).expect("restore");
    assert_eq!(report.entries, 2);
    for q in &persisted {
        assert_eq!(restored.submit(q).wait().served, Served::Cache);
    }
    assert_eq!(restored.stats().cold_tunes, 0);
    assert_eq!(
        restored.submit(&lost).wait().served,
        Served::Tuned,
        "at most one interval of work is lost"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshotter_enabled_after_workers_parked_still_fires() {
    // Regression: `pop_until` must re-read the snapshot deadline on
    // every wakeup. Workers park with no schedule (deadline = None)
    // while the shard is made dirty; enabling snapshots afterwards --
    // with NO further traffic to cycle the worker loop -- must still
    // produce a snapshot via the kick.
    let dir = std::env::temp_dir().join("isaac_service_late_enable_test");
    let _ = std::fs::remove_dir_all(&dir);

    let service = TuneService::new();
    service.add_shard(0, fresh_tuner(tesla_p100()));
    let query = gemm_query(0, 96, 64, 48);
    assert!(service.submit(&query).wait().choice.is_some());
    // Workers are now idle, parked on the condvar with no deadline.
    std::thread::sleep(Duration::from_millis(10));

    service.enable_snapshots(&dir, Duration::from_millis(15));
    wait_until("the late-enabled snapshotter to fire", || {
        service.stats().snapshots >= 1
    });
    assert_eq!(service.last_snapshot().map(|r| r.entries), Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_flushes_the_last_interval_of_tuning_work() {
    let dir = std::env::temp_dir().join("isaac_service_shutdown_flush_test");
    let _ = std::fs::remove_dir_all(&dir);

    let service = TuneService::new();
    service.add_shard(0, fresh_tuner(tesla_p100()));
    // An interval so long it never fires: only the snapshot-on-drop
    // flush can persist anything.
    service.enable_snapshots(&dir, Duration::from_secs(3600));
    let query = gemm_query(0, 96, 64, 48);
    assert!(service.submit(&query).wait().choice.is_some());
    assert_eq!(service.stats().snapshots, 0, "interval never fired");
    drop(service);

    let restored = TuneService::new();
    restored.add_shard(0, fresh_tuner(tesla_p100()));
    let report = restored.restore_all(&dir).expect("restore");
    assert_eq!(report.entries, 1, "the drop flush persisted the work");
    assert_eq!(restored.submit(&query).wait().served, Served::Cache);
    assert_eq!(restored.stats().cold_tunes, 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cost_aware_shards_keep_hot_expensive_decisions_under_pressure() {
    // Router-level acceptance for PR 5's eviction tentpole: on a
    // capacity-bounded shard, a hot deep-reduction decision (expensive
    // to re-acquire) survives a scan of cheap one-off shapes under the
    // default CostAware policy -- and demonstrably does NOT under the
    // LRU reference policy on an identical trace.
    let run_trace = |policy: EvictionPolicy| -> (TuneService, Query) {
        let mut tuner = fresh_tuner(tesla_p100());
        tuner.set_eviction_policy(policy);
        tuner.set_cache_capacity(3);
        let service = TuneService::with_workers(1);
        service.add_shard(0, tuner);

        // One expensive deep-reduction key, hit repeatedly...
        let deep = Query::gemm(0, GemmShape::new(32, 32, 60_000, "N", "T", DType::F32));
        assert_eq!(service.submit(&deep).wait().served, Served::Tuned);
        for _ in 0..4 {
            assert_eq!(service.submit(&deep).wait().served, Served::Cache);
        }
        // ...then a scan of cheap one-off shapes that overflows the
        // 3-entry cache.
        for i in 0..4u32 {
            let q = gemm_query(0, 96 + 16 * i, 48, 64);
            assert_eq!(service.submit(&q).wait().served, Served::Tuned);
        }
        (service, deep)
    };

    let (service, deep) = run_trace(EvictionPolicy::CostAware);
    let tuner = service.shard_tuner(0, OpKind::Gemm).expect("shard");
    let stats = tuner.cache_stats();
    assert_eq!(stats.evictions, 2, "the scan overflowed by two");
    assert_eq!(stats.evicted_hits, 0, "only cold scan entries were shed");
    assert_eq!(
        service.submit(&deep).wait().served,
        Served::Cache,
        "the hot, expensive decision survived the scan"
    );

    let (service, deep) = run_trace(EvictionPolicy::Lru);
    assert_eq!(
        service.submit(&deep).wait().served,
        Served::Tuned,
        "plain LRU lost the hot decision to the scan and must re-tune"
    );
    let tuner = service.shard_tuner(0, OpKind::Gemm).expect("shard");
    assert!(
        tuner.cache_stats().evicted_hits >= 4,
        "LRU threw away hot traffic"
    );
}

#[test]
fn dropping_the_service_fails_outstanding_tickets() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.pause();
    let orphan = service.submit(&gemm_query(0, 320, 64, 96));
    drop(service);
    // Shutdown cancels the flight: the ticket resolves instead of
    // blocking a caller forever on a dead service.
    assert_eq!(orphan.wait().served, Served::Failed);
}
