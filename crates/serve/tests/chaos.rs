//! Deterministic fault-injection ("chaos") suite for the durability
//! layer: every declared crash point is exercised with seeded random
//! workloads, the fleet is killed and rebuilt, and recovery is held to
//! two invariants:
//!
//! * **no lost acknowledgements** -- every decision whose WAL append
//!   completed before the crash is served from cache after recovery
//!   (`restored cold tunes == 0` for clean kills);
//! * **byte-exact equivalence** -- the recovered cache serializes to
//!   exactly the bytes of a shadow cache that applied the same
//!   mutations in the same order (`IsaacTuner::cache_text`, whose
//!   entry order is sorted and whose `%.e` formatting round-trips).
//!
//! Seeds come from `ISAAC_CHAOS_SEEDS` (space-separated integers,
//! default `11 42 1802`), so CI pins a reproducible set and a failure
//! message names the seed to replay.

use isaac_core::durability::{FaultIo, FaultPlan};
use isaac_core::ShapeKey;
use isaac_core::{EvictionPolicy, IsaacTuner, OpKind, TrainOptions, TuneKey, TunedChoice};
use isaac_device::specs::tesla_p100;
use isaac_device::{DType, DeviceSpec};
use isaac_gen::shapes::GemmShape;
use isaac_serve::{wal_file_name, FaultKind, FaultTuner, Query, Served, TuneService};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn shared_model_path() -> &'static Path {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let tuner = IsaacTuner::train(
            tesla_p100(),
            OpKind::Gemm,
            TrainOptions {
                samples: 1_500,
                hidden: vec![16, 16],
                epochs: 2,
                top_k: 10,
                ..Default::default()
            },
        );
        let path = std::env::temp_dir().join("isaac_chaos_shared_model.txt");
        tuner.save(&path).expect("save shared model");
        path
    })
}

fn fresh_tuner(spec: DeviceSpec) -> IsaacTuner {
    IsaacTuner::load(shared_model_path(), spec, OpKind::Gemm).expect("load shared model")
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "isaac_chaos_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// The seed set under test: `ISAAC_CHAOS_SEEDS` or the pinned default.
fn seeds() -> Vec<u64> {
    let raw = std::env::var("ISAAC_CHAOS_SEEDS").unwrap_or_else(|_| "11 42 1802".into());
    let seeds: Vec<u64> = raw
        .split_whitespace()
        .map(|s| s.parse().expect("ISAAC_CHAOS_SEEDS: integers only"))
        .collect();
    assert!(!seeds.is_empty(), "ISAAC_CHAOS_SEEDS is empty");
    seeds
}

fn synth_key(device: u16, m: u32) -> TuneKey {
    TuneKey {
        device,
        op: OpKind::Gemm,
        dtype: DType::F32,
        shape: ShapeKey::Gemm {
            m,
            n: 32,
            k: 64,
            trans_a: false,
            trans_b: true,
        },
    }
}

fn synth_choice(tag: f64) -> TunedChoice {
    TunedChoice {
        config: isaac_gen::GemmConfig::default(),
        predicted_gflops: tag,
        tflops: tag * 2.0,
        time_s: tag * 3.0,
    }
}

const NEVER: Duration = Duration::from_secs(3_600);

/// A seeded random mutation stream: mostly fresh keys, some
/// overwrites, through a bounded cache so the journal carries eviction
/// records too. Applied identically to the shard under test and to the
/// shadow (same insert order on the same capacity and policy produces
/// the same evictions -- the reference state for byte-exact checks).
fn workload(rng: &mut StdRng, n: usize) -> Vec<(TuneKey, TunedChoice)> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let m = if i > 0 && rng.gen_range(0..4) == 0 {
            // Revisit an earlier shape: an overwrite, not a new entry.
            1 + rng.gen_range(0..i as u32)
        } else {
            1 + i as u32
        };
        out.push((synth_key(0, m), synth_choice(f64::from(m) + 0.125)));
    }
    out
}

fn shadow(policy: EvictionPolicy, capacity: usize) -> IsaacTuner {
    let mut t = fresh_tuner(tesla_p100());
    t.set_cache_capacity(capacity);
    t.set_eviction_policy(policy);
    t
}

fn policy_for(seed: u64) -> EvictionPolicy {
    if seed.is_multiple_of(2) {
        EvictionPolicy::Lru
    } else {
        EvictionPolicy::CostAware
    }
}

/// Run one crash scenario: apply `mutations[..first]`, `compact_now`
/// once (establishing a base + a live tail), apply the rest, then
/// trigger the fault via a second compaction (ignored if it fails) and
/// drop the service while "dead". Returns nothing -- the caller
/// recovers and checks.
fn run_crashing_fleet(
    dir: &Path,
    io: Arc<FaultIo>,
    policy: EvictionPolicy,
    capacity: usize,
    mutations: &[(TuneKey, TunedChoice)],
    first: usize,
) {
    let service = TuneService::with_workers(1);
    let mut shard = fresh_tuner(tesla_p100());
    shard.set_cache_capacity(capacity);
    shard.set_eviction_policy(policy);
    let tuner = service.add_shard(0, shard);
    service.enable_durability_with(dir, NEVER, io.clone());
    for (key, choice) in &mutations[..first] {
        tuner.cache().insert(*key, choice.clone());
    }
    service.compact_now().expect("first compaction is clean");
    for (key, choice) in &mutations[first..] {
        tuner.cache().insert(*key, choice.clone());
    }
    // The faulted sweep: a crash point fires here (or the io is
    // already dead from an append fault). Either way the "process" is
    // gone -- disable the schedule so drop does not flush.
    let _ = service.compact_now();
    service.disable_snapshots();
}

/// Recover into a fresh fleet and assert byte-exact equivalence with
/// `expected` (a shadow tuner that applied the reference history).
fn recover_and_compare(
    dir: &Path,
    policy: EvictionPolicy,
    capacity: usize,
    expected: &IsaacTuner,
    label: &str,
) {
    let service = TuneService::with_workers(1);
    let mut shard = fresh_tuner(tesla_p100());
    shard.set_cache_capacity(capacity);
    shard.set_eviction_policy(policy);
    let tuner = service.add_shard(0, shard);
    service.recover_all(dir).expect("recovery never errors");
    assert_eq!(
        tuner.cache_text(),
        expected.cache_text(),
        "{label}: recovered cache must be byte-exact"
    );
}

/// Crash points inside compaction: the sweep dies mid-write, mid-rename
/// or after the rename but before the WAL shrink. In every case the
/// full pre-crash state (base + intact log) must replay exactly --
/// including the pre-truncate case, where the *whole* log is replayed
/// over the *new* base and only idempotent put/delete semantics keep
/// that convergent.
#[test]
fn compaction_crash_points_recover_byte_exact() {
    for &seed in &seeds() {
        for point in ["compact.write", "compact.rename", "compact.pre_truncate"] {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xC0117AC7);
            let policy = policy_for(seed);
            let capacity = 4 + rng.gen_range(0..4) as usize;
            let n = 12 + rng.gen_range(0..8) as usize;
            let first = n / 2;
            let mutations = workload(&mut rng, n);
            let dir = temp_dir(&format!("cp_{seed}_{}", point.replace('.', "_")));
            let io = Arc::new(FaultIo::new(FaultPlan {
                // The first sweep is clean; the second hits the point.
                crash_at: Some((point.into(), 2)),
                ..Default::default()
            }));
            run_crashing_fleet(&dir, io.clone(), policy, capacity, &mutations, first);
            assert!(io.is_dead(), "seed {seed}: {point} must have fired");

            // Every mutation was acknowledged (its append completed
            // before the crash), so the shadow applies all of them.
            let expected = shadow(policy, capacity);
            for (key, choice) in &mutations {
                expected.cache().insert(*key, choice.clone());
            }
            recover_and_compare(
                &dir,
                policy,
                capacity,
                &expected,
                &format!("seed {seed} {point}"),
            );
        }
    }
}

/// A clean kill between appends: everything acknowledged so far is on
/// disk; recovery restores exactly that prefix.
#[test]
fn clean_kill_after_nth_append_restores_the_prefix() {
    for &seed in &seeds() {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let n = 10 + rng.gen_range(0..10) as usize;
        // Unbounded cache: one append per insert, so "die after the
        // k-th append" is exactly "the first k inserts are durable".
        let capacity = 1_000;
        let policy = policy_for(seed);
        let k = 1 + rng.gen_range(0..n as u32) as u64;
        let mutations = workload(&mut rng, n);
        let dir = temp_dir(&format!("kill_{seed}"));
        let io = Arc::new(FaultIo::new(FaultPlan {
            die_after_append: Some(k),
            ..Default::default()
        }));

        let service = TuneService::with_workers(1);
        let mut shard = fresh_tuner(tesla_p100());
        shard.set_cache_capacity(capacity);
        let tuner = service.add_shard(0, shard);
        service.enable_durability_with(&dir, NEVER, io.clone());
        let mut durable = 0usize;
        for (key, choice) in &mutations {
            if io.is_dead() {
                break;
            }
            tuner.cache().insert(*key, choice.clone());
            if !io.is_dead() {
                durable += 1;
            }
        }
        // die_after_append kills *after* the write lands: the k-th
        // record itself is durable.
        durable = durable.max(k as usize);
        service.disable_snapshots();
        drop(service);

        let expected = shadow(policy, capacity);
        for (key, choice) in &mutations[..durable] {
            expected.cache().insert(*key, choice.clone());
        }
        recover_and_compare(
            &dir,
            policy,
            capacity,
            &expected,
            &format!("seed {seed} kill@{k}"),
        );
    }
}

/// A torn append: the record is cut mid-byte and the process dies.
/// Recovery truncates the torn tail (counted), and everything *before*
/// it is intact.
#[test]
fn torn_append_truncates_to_the_acknowledged_prefix() {
    for &seed in &seeds() {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7047);
        let n = 8 + rng.gen_range(0..8) as usize;
        let capacity = 1_000;
        let policy = policy_for(seed);
        let k = 2 + rng.gen_range(0..n as u32 - 1) as u64;
        let cut = 1 + rng.gen_range(0..8) as usize;
        let mutations = workload(&mut rng, n);
        let dir = temp_dir(&format!("torn_{seed}"));
        let io = Arc::new(FaultIo::new(FaultPlan {
            short_append: Some((k, cut)),
            ..Default::default()
        }));

        let service = TuneService::with_workers(1);
        let mut shard = fresh_tuner(tesla_p100());
        shard.set_cache_capacity(capacity);
        let tuner = service.add_shard(0, shard);
        service.enable_durability_with(&dir, NEVER, io.clone());
        for (key, choice) in &mutations {
            if io.is_dead() {
                break;
            }
            tuner.cache().insert(*key, choice.clone());
        }
        assert!(io.is_dead(), "seed {seed}: torn append must kill the io");
        service.disable_snapshots();
        drop(service);

        // Durable prefix: the k-th append tore, so k-1 records hold.
        let expected = shadow(policy, capacity);
        for (key, choice) in &mutations[..k as usize - 1] {
            expected.cache().insert(*key, choice.clone());
        }

        let bench = TuneService::with_workers(1);
        let mut shard = fresh_tuner(tesla_p100());
        shard.set_cache_capacity(capacity);
        let tuner = bench.add_shard(0, shard);
        let report = bench.recover_all(&dir).expect("recover");
        assert_eq!(
            report.torn_records, 1,
            "seed {seed}: exactly the cut record is torn"
        );
        assert_eq!(
            tuner.cache_text(),
            expected.cache_text(),
            "seed {seed}: prefix before the torn record is intact"
        );
        // The disk log was truncated: a second recovery sees no tear.
        let fresh = TuneService::with_workers(1);
        fresh.add_shard(0, fresh_tuner(tesla_p100()));
        let report = fresh.recover_all(&dir).expect("re-recover");
        assert_eq!(report.torn_records, 0, "seed {seed}: tail gone on disk");
    }
}

/// A flaky disk (one failed append, process survives): the service
/// keeps serving, the error is counted, and the next compaction heals
/// the hole so recovery is complete anyway.
#[test]
fn flaky_appends_heal_through_compaction() {
    for &seed in &seeds() {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1A2);
        let n = 6 + rng.gen_range(0..6) as usize;
        let capacity = 1_000;
        let policy = policy_for(seed);
        let mutations = workload(&mut rng, n);
        let dir = temp_dir(&format!("flaky_{seed}"));
        let io = Arc::new(FaultIo::new(FaultPlan {
            fail_append: Some(1 + rng.gen_range(0..n as u32) as u64),
            ..Default::default()
        }));

        {
            let service = TuneService::with_workers(1);
            let mut shard = fresh_tuner(tesla_p100());
            shard.set_cache_capacity(capacity);
            let tuner = service.add_shard(0, shard);
            service.enable_durability_with(&dir, NEVER, io.clone());
            for (key, choice) in &mutations {
                tuner.cache().insert(*key, choice.clone());
            }
            assert!(!io.is_dead(), "seed {seed}: flaky is not fatal");
            assert_eq!(service.stats().wal_append_errors, 1, "seed {seed}");
            assert_eq!(tuner.cache().len(), {
                let probe = shadow(policy, capacity);
                for (key, choice) in &mutations {
                    probe.cache().insert(*key, choice.clone());
                }
                probe.cache().len()
            });
            service.compact_now().expect("healing compaction");
            service.disable_snapshots();
        }

        let expected = shadow(policy, capacity);
        for (key, choice) in &mutations {
            expected.cache().insert(*key, choice.clone());
        }
        recover_and_compare(
            &dir,
            policy,
            capacity,
            &expected,
            &format!("seed {seed} flaky"),
        );
    }
}

/// End-to-end through the real serving path: cold tunes published under
/// durability, fleet killed without a flush, fresh fleet recovered --
/// the whole working set is cache hits, zero restored cold tunes, even
/// with an injected worker panic mid-workload (the retried tune still
/// journals its decision).
#[test]
fn recovered_fleet_serves_the_working_set_with_zero_cold_tunes() {
    for &seed in &seeds() {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E17E);
        let shapes: Vec<(u32, u32, u32)> = (0..6)
            .map(|_| {
                (
                    16 * (2 + rng.gen_range(0..40u32)),
                    16 * (2 + rng.gen_range(0..10u32)),
                    16 * (1 + rng.gen_range(0..6u32)),
                )
            })
            .collect();
        let dir = temp_dir(&format!("fleet_{seed}"));
        {
            let service = TuneService::with_workers(2);
            service.add_shard(0, fresh_tuner(tesla_p100()));
            service.enable_durability(&dir, NEVER);
            // One injected worker panic somewhere in the stream: the
            // default retry budget rides it out and the decision must
            // still reach the journal. (A global script is fine here:
            // the stream is sequential, one key in flight at a time.)
            let fault = Arc::new(FaultTuner::new());
            fault.fault_next(1, FaultKind::Panic);
            service.set_tune_fault(Some(fault));
            for &(m, n, k) in &shapes {
                let d = service
                    .submit(&Query::gemm(
                        0,
                        GemmShape::new(m, n, k, "N", "T", DType::F32),
                    ))
                    .wait();
                assert!(d.choice.is_some(), "seed {seed}: publish must land");
            }
            assert!(
                std::fs::metadata(dir.join(wal_file_name(0, OpKind::Gemm)))
                    .map(|m| m.len() > 0)
                    .unwrap_or(false),
                "seed {seed}: decisions journaled before any compaction"
            );
            service.disable_snapshots(); // crash: no shutdown flush
        }

        let service = TuneService::with_workers(2);
        service.add_shard(0, fresh_tuner(tesla_p100()));
        let report = service.recover_all(&dir).expect("recover");
        assert!(report.replayed > 0, "seed {seed}: WAL-only state replayed");
        for &(m, n, k) in &shapes {
            let d = service
                .submit(&Query::gemm(
                    0,
                    GemmShape::new(m, n, k, "N", "T", DType::F32),
                ))
                .wait();
            assert_eq!(
                d.served,
                Served::Cache,
                "seed {seed}: {m}x{n}x{k} must be restored"
            );
        }
        assert_eq!(
            service.stats().cold_tunes,
            0,
            "seed {seed}: restored_cold_tunes == 0"
        );
    }
}
