//! Serving-layer chaos: seeded fault scripts driven through the
//! `TuneFault` seam, asserting the self-healing invariants end to end:
//!
//! 1. **no stranded tickets** -- under a mixed per-key fault storm
//!    (panics, errors, stalls, wrong-device) every submitted ticket
//!    resolves, and once the faults clear the fleet converges: every
//!    key cached, breakers re-closed, quarantine empty, and the cache
//!    **bit-identical** (`cache_text`) to a never-faulted shadow
//!    service that tuned the same working set;
//! 2. **quarantine answers instantly** -- a poisoned key resolves
//!    `Served::Degraded` without touching the foreground miss queue or
//!    burning another tune attempt;
//! 3. **degraded is never durable** -- with durability on, a
//!    quarantined key writes nothing to the WAL and nothing to
//!    snapshots; the background repair upgrades it to an authoritative
//!    entry exactly once, and only *that* is journaled;
//! 4. **breaker-open degrades new keys** -- with the shard's breaker
//!    tripped, a fresh key is served by the model-free heuristic
//!    (exactly `IsaacTuner::heuristic_gemm`, measurements zeroed), and
//!    repair + a healthy probe re-close the breaker.
//!
//! Seeds come from `ISAAC_CHAOS_SEEDS` (space-separated u64s; CI pins
//! its own set) so a failure reproduces exactly.

use isaac_core::{IsaacTuner, OpKind, TrainOptions};
use isaac_device::specs::tesla_p100;
use isaac_device::{DType, DeviceSpec};
use isaac_gen::shapes::GemmShape;
use isaac_serve::{
    snapshot_file_name, wal_file_name, BreakerConfig, BreakerState, FaultKind, FaultTuner,
    QuarantineConfig, Query, Served, TuneService,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn shared_model_path() -> &'static Path {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let tuner = IsaacTuner::train(
            tesla_p100(),
            OpKind::Gemm,
            TrainOptions {
                samples: 1_500,
                hidden: vec![16, 16],
                epochs: 2,
                top_k: 10,
                ..Default::default()
            },
        );
        let path = std::env::temp_dir().join("isaac_chaos_serve_shared_model.txt");
        tuner.save(&path).expect("save shared model");
        path
    })
}

fn fresh_tuner(spec: DeviceSpec) -> IsaacTuner {
    IsaacTuner::load(shared_model_path(), spec, OpKind::Gemm).expect("load shared model")
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "isaac_chaos_serve_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// The seed set under test: `ISAAC_CHAOS_SEEDS` or the pinned default.
fn seeds() -> Vec<u64> {
    let raw = std::env::var("ISAAC_CHAOS_SEEDS").unwrap_or_else(|_| "11 42 1802".into());
    let seeds: Vec<u64> = raw
        .split_whitespace()
        .map(|s| s.parse().expect("ISAAC_CHAOS_SEEDS: integers only"))
        .collect();
    assert!(!seeds.is_empty(), "ISAAC_CHAOS_SEEDS is empty");
    seeds
}

fn gemm_query(device: u16, m: u32, n: u32, k: u32) -> Query {
    Query::gemm(device, GemmShape::new(m, n, k, "N", "T", DType::F32))
}

/// Spin (with a timeout) until an asynchronous gauge settles.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Breaker/quarantine tuning for the chaos runs: short TTLs so the
/// state machines cycle within a test, no latency SLO (honest
/// debug-mode tunes are slow -- the SLO is exercised by unit tests).
fn impatient(service: &TuneService) {
    service.set_breaker_config(BreakerConfig {
        window: 8,
        failure_threshold: 3,
        open_ttl: Duration::from_millis(15),
        max_open_ttl: Duration::from_millis(200),
        latency_slo: None,
    });
    service.set_quarantine_config(QuarantineConfig {
        ttl: Duration::from_millis(10),
        max_ttl: Duration::from_millis(100),
    });
}

const NEVER: Duration = Duration::from_secs(3_600);

/// Scenario 1: the full storm. Six keys with per-key fault scripts
/// spanning the whole catalog are submitted (shuffled, with coalescing
/// duplicates) against a two-worker fleet. Every ticket must resolve;
/// quarantined keys must answer from the ledger without burning
/// attempts; and after the seam is cleared the fleet must converge to
/// a cache byte-identical to a never-faulted shadow.
#[test]
fn faulted_fleet_converges_to_the_shadow_cache() {
    for &seed in &seeds() {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0A5C);
        let shapes: Vec<(u32, u32, u32)> = (0..6)
            .map(|_| {
                (
                    16 * (2 + rng.gen_range(0..40u32)),
                    16 * (2 + rng.gen_range(0..10u32)),
                    16 * (1 + rng.gen_range(0..6u32)),
                )
            })
            .collect();

        // The shadow: same model, same working set, zero faults.
        let shadow_text = {
            let service = TuneService::with_workers(2);
            service.add_shard(0, fresh_tuner(tesla_p100()));
            for &(m, n, k) in &shapes {
                let d = service.submit(&gemm_query(0, m, n, k)).wait();
                assert!(d.choice.is_some(), "seed {seed}: shadow tune failed");
            }
            service
                .shard_tuner(0, OpKind::Gemm)
                .expect("shadow shard")
                .cache_text()
        };

        let service = TuneService::with_workers(2);
        let tuner = service.add_shard(0, fresh_tuner(tesla_p100()));
        impatient(&service);
        let budget = service.retry_policy().max_attempts;
        let fault = Arc::new(FaultTuner::new());
        service.set_tune_fault(Some(fault.clone()));

        // One script per key, covering the catalog. Scripts longer than
        // the retry budget force quarantine + repair; shorter ones ride
        // the in-flight retry path.
        let scripts: Vec<Vec<FaultKind>> = vec![
            vec![],
            vec![FaultKind::Panic; (budget - 1) as usize],
            vec![FaultKind::Panic; (budget + 2) as usize],
            vec![FaultKind::Error; (budget + 1) as usize],
            vec![FaultKind::Slow(Duration::from_millis(25)); 2],
            vec![FaultKind::WrongDevice; budget as usize],
        ];
        let queries: Vec<Query> = shapes
            .iter()
            .map(|&(m, n, k)| gemm_query(0, m, n, k))
            .collect();
        for (q, script) in queries.iter().zip(&scripts) {
            fault.fault_key(q.key(), script);
        }

        // Shuffled submissions with duplicates: coalescing under fire.
        let mut order: Vec<usize> = (0..queries.len()).chain(0..queries.len()).collect();
        order.shuffle(&mut rng);
        let tickets: Vec<_> = order
            .iter()
            .map(|&i| (i, service.submit(&queries[i])))
            .collect();

        // Invariant: no stranded tickets, and no ticket fails outright
        // -- a flight that exhausts its budget degrades instead.
        for (i, ticket) in tickets {
            let d = ticket.wait();
            assert!(
                matches!(
                    d.served,
                    Served::Tuned | Served::Cache | Served::Coalesced | Served::Degraded
                ),
                "seed {seed} key {i}: unexpected {:?}",
                d.served
            );
            assert!(d.choice.is_some(), "seed {seed} key {i}: no choice");
        }

        // Invariant: a quarantined key re-answers from the ledger, not
        // the tuner. (A background repair whose script has drained may
        // race us and discharge the key first -- then the resubmit is a
        // plain cache hit; either way no flight is spawned. The strict
        // instant-answer property is pinned in
        // `quarantined_keys_answer_instantly_without_queueing`.)
        for (i, q) in queries.iter().enumerate() {
            if !service.is_quarantined(&q.key()) {
                continue;
            }
            let d = service.submit(q).wait();
            assert!(
                matches!(d.served, Served::Degraded | Served::Cache),
                "seed {seed} key {i}: quarantined resubmit got {:?}",
                d.served
            );
        }

        // Clear the storm; background repair must converge the fleet.
        fault.clear();
        wait_until("every key repaired into the cache", || {
            queries
                .iter()
                .all(|q| tuner.cache().peek(&q.key()).is_some())
        });
        wait_until("the quarantine to drain", || {
            service.quarantined_keys() == 0
        });
        wait_until("the breaker to re-close", || {
            service.breaker_state(0, OpKind::Gemm) == BreakerState::Closed
        });

        // Invariant: the repaired cache is byte-identical to the
        // never-faulted shadow -- degraded stand-ins never leaked in.
        assert_eq!(
            tuner.cache_text(),
            shadow_text,
            "seed {seed}: repaired cache diverged from the shadow"
        );

        // Invariant: no key ever burned more than its script plus one
        // clean landing attempt (quarantine really stopped the bleed).
        for (i, (q, script)) in queries.iter().zip(&scripts).enumerate() {
            assert!(
                fault.attempts(&q.key()) <= script.len() as u32 + 1,
                "seed {seed} key {i}: {} attempts for a {}-fault script",
                fault.attempts(&q.key()),
                script.len()
            );
        }
        let stats = service.stats();
        assert_eq!(stats.failed, 0, "seed {seed}: nothing may fail outright");
        assert!(
            stats.repair_upgrades >= 3,
            "seed {seed}: the three over-budget scripts repair via quarantine"
        );
    }
}

/// Scenario 2: a poisoned key is served straight from the ledger --
/// the ticket is ready before any worker could have run, and the
/// foreground miss queue is never touched.
#[test]
fn quarantined_keys_answer_instantly_without_queueing() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    impatient(&service);
    let fault = Arc::new(FaultTuner::new());
    service.set_tune_fault(Some(fault.clone()));

    let query = gemm_query(0, 96, 96, 48);
    fault.poison_key(query.key(), FaultKind::Error);
    let d = service.submit(&query).wait();
    assert_eq!(d.served, Served::Degraded);
    assert!(service.is_quarantined(&query.key()));

    // Freeze the workers: an instant answer cannot be queue-powered.
    service.pause();
    let attempts = fault.attempts(&query.key());
    let ticket = service.submit(&query);
    let parked = ticket.try_get().expect("quarantined submit must be ready");
    assert_eq!(parked.served, Served::Degraded);
    assert_eq!(parked.choice, d.choice, "memoized heuristic, stable");
    assert_eq!(
        service.service_stats().queue_depth,
        0,
        "no foreground job for a quarantined key"
    );
    assert_eq!(fault.attempts(&query.key()), attempts, "no attempt burned");
    service.resume();

    // Heal: the background repair upgrades the entry and subsequent
    // submits leave the degraded path entirely.
    fault.heal(&query.key());
    wait_until("the repair to land", || {
        service.stats().repair_upgrades == 1
    });
    assert!(!service.is_quarantined(&query.key()));
    assert_eq!(service.submit(&query).wait().served, Served::Cache);
}

/// Scenario 3: degraded answers are never durable state. A quarantined
/// key journals nothing and snapshots nothing; the repair publishes
/// the authoritative entry exactly once, and only that reaches disk.
#[test]
fn degraded_decisions_never_reach_wal_or_snapshots() {
    let dir = temp_dir("degraded_wal");
    let service = TuneService::with_workers(1);
    let tuner = service.add_shard(0, fresh_tuner(tesla_p100()));
    impatient(&service);
    service.enable_durability(&dir, NEVER);
    let fault = Arc::new(FaultTuner::new());
    service.set_tune_fault(Some(fault.clone()));

    let query = gemm_query(0, 128, 96, 64);
    fault.poison_key(query.key(), FaultKind::Panic);
    let d = service.submit(&query).wait();
    assert_eq!(d.served, Served::Degraded);
    assert!(d.choice.is_some());

    // Nothing durable: the WAL never saw the heuristic stand-in...
    let wal = dir.join(wal_file_name(0, OpKind::Gemm));
    let wal_len = |p: &Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
    assert_eq!(wal_len(&wal), 0, "degraded must not be journaled");
    // ...and neither does a compaction snapshot (the cache is empty, so
    // the shard is not even dirty).
    let report = service.compact_now().expect("compact");
    assert_eq!(report.entries, 0, "nothing authoritative to persist");
    let snap = dir.join(snapshot_file_name(0, OpKind::Gemm));
    assert!(
        !snap.exists() || !std::fs::read_to_string(&snap).unwrap().contains("gemm"),
        "degraded must not be snapshotted"
    );

    // Heal; the repair upgrades exactly once and only the real tune is
    // journaled.
    fault.heal(&query.key());
    wait_until("the repair to land", || {
        service.stats().repair_upgrades == 1
    });
    wait_until("the publish to be journaled", || wal_len(&wal) > 0);
    let published = tuner.cache().peek(&query.key()).expect("repaired entry");
    assert!(
        published.time_s > 0.0,
        "the published entry is a measured tune, not the heuristic"
    );
    assert_eq!(service.submit(&query).wait().served, Served::Cache);

    // Exactly once: no double upgrade from a straggling repair.
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(service.stats().repair_upgrades, 1);
    assert_eq!(service.service_stats().background_depth, 0);
    service.disable_snapshots();
}

/// Scenario 4: an open breaker degrades *new* keys on the shard with
/// exactly the model-free heuristic, and the repair path re-closes it.
#[test]
fn open_breaker_degrades_new_keys_with_the_heuristic() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.set_breaker_config(BreakerConfig {
        window: 4,
        failure_threshold: 2,
        // Long enough that the breaker is still open when we probe it
        // below, short enough that repair re-probes within the test.
        open_ttl: Duration::from_millis(300),
        max_open_ttl: Duration::from_secs(1),
        latency_slo: None,
    });
    service.set_quarantine_config(QuarantineConfig {
        ttl: Duration::from_millis(10),
        max_ttl: Duration::from_millis(100),
    });
    let fault = Arc::new(FaultTuner::new());
    service.set_tune_fault(Some(fault.clone()));

    // Trip the breaker: one flight's worth of errors crosses the
    // threshold (budget 3 >= threshold 2).
    let sick = gemm_query(0, 160, 96, 64);
    fault.poison_key(sick.key(), FaultKind::Error);
    let d = service.submit(&sick).wait();
    assert_eq!(d.served, Served::Degraded);
    assert_eq!(service.breaker_state(0, OpKind::Gemm), BreakerState::Open);
    assert!(service.stats().breaker_opens >= 1);

    // A brand-new key on the sick shard: degraded without tuning, and
    // the stand-in is *exactly* the deterministic heuristic.
    let fresh = gemm_query(0, 512, 256, 128);
    let d = service.submit(&fresh).wait();
    assert_eq!(d.served, Served::Degraded);
    let tuner = service.shard_tuner(0, OpKind::Gemm).expect("shard");
    let expected = tuner
        .heuristic_gemm(&GemmShape::new(512, 256, 128, "N", "T", DType::F32))
        .expect("heuristic exists");
    let got = d.choice.expect("degraded choice");
    assert_eq!(got.config, expected.config, "heuristic config, verbatim");
    assert_eq!(got.tflops, 0.0, "measurements zeroed: not authoritative");
    assert_eq!(
        fault.attempts(&fresh.key()),
        0,
        "an open breaker never reaches the tuner"
    );

    // Heal everything: repairs land both keys, a healthy outcome
    // re-closes the breaker, the ledger drains.
    fault.heal(&sick.key());
    wait_until("both repairs to land", || {
        tuner.cache().peek(&sick.key()).is_some() && tuner.cache().peek(&fresh.key()).is_some()
    });
    wait_until("the breaker to re-close", || {
        service.breaker_state(0, OpKind::Gemm) == BreakerState::Closed
    });
    assert!(service.stats().breaker_closes >= 1);
    assert_eq!(service.quarantined_keys(), 0);
    assert_eq!(service.submit(&fresh).wait().served, Served::Cache);
}
