//! Regression tests for [`ServiceStats::snapshot`]'s consistent-read
//! contract over the *aggregated per-shard cache counters*: the service
//! sums each shard cache's striped per-segment hit/miss cells, and a
//! sum taken mid-traffic may lag the true total but must never exceed
//! it -- so consecutive snapshots never go backwards, and a quiescent
//! snapshot equals the sum of the shards' own `cache_stats()` exactly.

use isaac_core::{IsaacTuner, OpKind, TrainOptions};
use isaac_device::specs::{gtx980ti, tesla_p100};
use isaac_device::{DType, DeviceSpec};
use isaac_gen::shapes::GemmShape;
use isaac_serve::{Query, ServiceStats, TuneService};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Train one small GEMM model, once per process (own filename: this
/// binary runs concurrently with the other serve test binaries).
fn shared_model_path() -> &'static Path {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let tuner = IsaacTuner::train(
            tesla_p100(),
            OpKind::Gemm,
            TrainOptions {
                samples: 1_500,
                hidden: vec![16, 16],
                epochs: 2,
                top_k: 10,
                ..Default::default()
            },
        );
        let path = std::env::temp_dir().join("isaac_stats_shared_model.txt");
        tuner.save(&path).expect("save shared model");
        path
    })
}

fn fresh_tuner(spec: DeviceSpec) -> IsaacTuner {
    IsaacTuner::load(shared_model_path(), spec, OpKind::Gemm).expect("load shared model")
}

fn gemm_query(device: u16, m: u32) -> Query {
    Query::gemm(device, GemmShape::new(m, 64, 96, "N", "T", DType::F32))
}

/// Consecutive consistent snapshots taken while reader threads hammer
/// the shard caches must report monotonically non-decreasing aggregated
/// hit/miss totals -- the torn-sum failure mode this guards against is
/// a snapshot seeing stripe A's new value but stripe B's old one, then
/// a later snapshot seeing less than an earlier one reported.
#[test]
fn aggregated_cache_counters_never_go_backwards_under_traffic() {
    let service = Arc::new(TuneService::new());
    let shard0 = service.add_shard(0, fresh_tuner(tesla_p100()));
    let shard1 = service.add_shard(1, fresh_tuner(gtx980ti()));

    // Warm a small keyset on both shards (cold tunes happen here, once).
    let warm: Vec<Query> = (0..3)
        .flat_map(|i| [gemm_query(0, 160 + i * 32), gemm_query(1, 160 + i * 32)])
        .collect();
    for q in &warm {
        service.submit(q).wait();
    }
    let warmed = ServiceStats::snapshot(&service);
    assert!(
        warmed.shard_cache_misses >= warm.len() as u64,
        "each cold tune starts with a cache miss (saw {})",
        warmed.shard_cache_misses
    );

    // Hammer the warm keys from several threads while the main thread
    // takes consistent snapshots.
    let stop = Arc::new(AtomicBool::new(false));
    let progress = Arc::new(AtomicU64::new(0));
    let mut drivers = Vec::new();
    for t in 0..4usize {
        let service = Arc::clone(&service);
        let warm = warm.clone();
        let stop = Arc::clone(&stop);
        let progress = Arc::clone(&progress);
        drivers.push(std::thread::spawn(move || {
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let q = &warm[(t + served as usize) % warm.len()];
                service.submit(q).wait();
                served += 1;
                progress.fetch_add(1, Ordering::Relaxed);
            }
            served
        }));
    }

    // Snapshot until the drivers have demonstrably pushed traffic
    // through (not a fixed iteration count: on a single-core box a
    // tight loop can finish before the drivers are even scheduled).
    let mut prev = warmed;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while progress.load(Ordering::Relaxed) < 2_000 {
        assert!(
            std::time::Instant::now() < deadline,
            "drivers made no progress"
        );
        let next = ServiceStats::snapshot(&service);
        assert!(
            next.shard_cache_hits >= prev.shard_cache_hits,
            "aggregated shard cache hits went backwards: {} -> {}",
            prev.shard_cache_hits,
            next.shard_cache_hits
        );
        assert!(
            next.shard_cache_misses >= prev.shard_cache_misses,
            "aggregated shard cache misses went backwards: {} -> {}",
            prev.shard_cache_misses,
            next.shard_cache_misses
        );
        prev = next;
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    let driven: u64 = drivers
        .into_iter()
        .map(|d| d.join().expect("driver panicked"))
        .sum();
    assert!(driven > 0, "drivers never got a query through");

    // Quiescent now: the aggregate must equal the sum of the shards'
    // own counters exactly -- same cells, just summed by the service.
    let final_stats = ServiceStats::snapshot(&service);
    let (hits, misses) = [&shard0, &shard1]
        .iter()
        .map(|t| t.cache_stats())
        .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));
    assert_eq!(
        (final_stats.shard_cache_hits, final_stats.shard_cache_misses),
        (hits, misses),
        "quiescent aggregate diverged from the shard caches"
    );
    assert!(
        final_stats.shard_cache_hits >= driven,
        "every driven query was warm: aggregate hits {} < driven {}",
        final_stats.shard_cache_hits,
        driven
    );
}

/// The aggregation must also see traffic that bypasses the front door:
/// direct tuner lookups bump the same striped counters, so the next
/// snapshot reflects them (this is what distinguishes
/// `shard_cache_hits` from the router's own `cache_hits`).
#[test]
fn aggregation_covers_direct_tuner_traffic() {
    let service = TuneService::new();
    let shard = service.add_shard(0, fresh_tuner(tesla_p100()));
    let q = gemm_query(0, 128);
    service.submit(&q).wait();

    let before = ServiceStats::snapshot(&service);
    let shape = GemmShape::new(128, 64, 96, "N", "T", DType::F32);
    let key = shard.key_gemm(&shape);
    for _ in 0..10 {
        assert!(shard.cache().get(&key).is_some());
    }
    let after = ServiceStats::snapshot(&service);
    assert_eq!(
        after.shard_cache_hits,
        before.shard_cache_hits + 10,
        "direct tuner hits missing from the aggregate"
    );
    assert_eq!(after.shard_cache_misses, before.shard_cache_misses);
}
