//! Determinism of the trace-driven load harness
//! (`isaac_serve::load`): the same seed must produce the identical
//! request sequence AND the identical outcome counts -- hits, tunes,
//! coalesces, sheds, rejections, timeouts, prewarms -- on every replay,
//! because `scripts/check_bench.sh` gates on them in CI.
//!
//! Seeds come from `ISAAC_LOAD_SEEDS` (space-separated, like the chaos
//! suite's `ISAAC_CHAOS_SEEDS`) so CI pins them and local runs can
//! explore.

use isaac_core::{IsaacTuner, OpKind, TrainOptions};
use isaac_device::specs::tesla_p100;
use isaac_serve::load::{generate, replay, ReplayOptions, Trace, TraceConfig};
use isaac_serve::{LoadReport, TuneService};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn shared_model_path() -> &'static Path {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let tuner = IsaacTuner::train(
            tesla_p100(),
            OpKind::Gemm,
            TrainOptions {
                samples: 1_500,
                hidden: vec![16, 16],
                epochs: 2,
                top_k: 10,
                ..Default::default()
            },
        );
        let path = std::env::temp_dir().join("isaac_load_shared_model.txt");
        tuner.save(&path).expect("save shared model");
        path
    })
}

fn seeds() -> Vec<u64> {
    std::env::var("ISAAC_LOAD_SEEDS")
        .ok()
        .map(|s| {
            s.split_whitespace()
                .map(|t| t.parse().expect("ISAAC_LOAD_SEEDS must be u64s"))
                .collect()
        })
        .unwrap_or_else(|| vec![7, 303])
}

/// A trace small enough to replay twice per seed in a debug test run,
/// but busy enough to exercise admission, shedding and prewarming.
fn tiny_config(seed: u64, devices: u16) -> TraceConfig {
    TraceConfig {
        seed,
        keyspace: 6,
        tenants: 2,
        devices,
        steps: 3,
        base_rate: 30,
        drift_per_step: 1,
        bursts: 1,
        tight_frac: 0.1,
        ..TraceConfig::default()
    }
}

fn fresh_service(devices: u16) -> TuneService {
    let service = TuneService::with_workers(2);
    for device in 0..devices {
        let tuner = IsaacTuner::load(shared_model_path(), tesla_p100(), OpKind::Gemm)
            .expect("load shared model");
        service.add_shard(device, tuner);
    }
    service
}

/// Everything in a [`LoadReport`] that must be bit-identical across
/// replays of the same trace (wall-clock figures excluded).
fn outcome_counts(report: &LoadReport) -> Vec<u64> {
    let mut counts = vec![
        report.requests,
        report.shed,
        report.rejected,
        report.timed_out,
        report.failed,
        report.prewarmed,
    ];
    for t in &report.tenants {
        counts.extend([
            t.tenant as u64,
            t.submitted,
            t.hits,
            t.tuned,
            t.coalesced,
            t.rejected,
            t.timed_out,
        ]);
    }
    counts
}

#[test]
fn same_seed_generates_the_identical_trace() {
    for seed in seeds() {
        let cfg = tiny_config(seed, 1);
        assert_eq!(generate(&cfg), generate(&cfg), "seed {seed}");
        let other = generate(&TraceConfig {
            seed: seed.wrapping_add(1),
            ..cfg
        });
        assert_ne!(generate(&cfg).steps, other.steps, "seed {seed}+1 diverges");
    }
}

#[test]
fn replay_outcome_counts_are_deterministic_across_fresh_services() {
    for seed in seeds() {
        let trace = generate(&tiny_config(seed, 1));
        let opts = ReplayOptions {
            quota: Some(2),
            ..ReplayOptions::default()
        };
        let first = replay(&fresh_service(1), &trace, &opts);
        let second = replay(&fresh_service(1), &trace, &opts);
        assert_eq!(
            outcome_counts(&first),
            outcome_counts(&second),
            "seed {seed}: replay outcomes must not depend on scheduling"
        );
        assert_eq!(first.requests, trace.requests() as u64);
        assert!(
            first.rejected > 0,
            "seed {seed}: quota 2 under a paused step must reject"
        );
        assert!(first.failed == 0, "seed {seed}: healthy replay never fails");
        assert!(first.hit_rate > 0.0, "seed {seed}: repeats must hit cache");
    }
}

#[test]
fn prewarming_replays_deterministically_and_seeds_the_lagged_device() {
    let seed = seeds()[0];
    // A longer, narrower trace than `tiny_config`: with a 4-key hot
    // window, 5 steps, and a min-hits threshold of 1, every seed gives
    // device 0 a hot decision that device 1 (lagging 2 steps behind the
    // window) has not tuned yet when the prewarm scan runs.
    let trace = generate(&TraceConfig {
        seed,
        keyspace: 4,
        tenants: 2,
        devices: 2,
        steps: 5,
        base_rate: 60,
        drift_per_step: 1,
        bursts: 1,
        tight_frac: 0.05,
        ..TraceConfig::default()
    });
    let opts = ReplayOptions {
        prewarm_min_hits: Some(1),
        ..ReplayOptions::default()
    };
    let first = replay(&fresh_service(2), &trace, &opts);
    let second = replay(&fresh_service(2), &trace, &opts);
    assert_eq!(
        outcome_counts(&first),
        outcome_counts(&second),
        "prewarm scheduling must not leak into the counts"
    );
    assert!(
        first.prewarmed > 0,
        "hot decisions on device 0 must prewarm device 1"
    );
}

#[test]
fn shape_ids_slide_with_the_hot_window() {
    let trace = generate(&tiny_config(seeds()[0], 1));
    // Later steps must introduce shape ids no earlier step could have
    // produced -- that drift is what keeps misses (and sheds) flowing.
    let max_of = |step: usize| {
        trace.steps[step]
            .iter()
            .map(|r| r.shape_id)
            .max()
            .expect("non-empty step")
    };
    assert!(max_of(trace.steps.len() - 1) > max_of(0));
    // And every id maps to a distinct, valid shape.
    let ids: std::collections::BTreeSet<_> =
        trace.steps.iter().flatten().map(|r| r.shape_id).collect();
    let shapes: std::collections::BTreeSet<_> = ids
        .iter()
        .map(|&id| format!("{:?}", Trace::shape_of(id)))
        .collect();
    assert_eq!(ids.len(), shapes.len(), "shape_of must be injective");
}
