//! Integration tests for the write-ahead durability layer:
//!
//! 1. **journal on publish** -- durability mode appends one CRC-framed
//!    WAL record per cache mutation at the moment it happens, and the
//!    on-disk log decodes back to exactly those records;
//! 2. **compaction** -- `compact_now` folds the log into the base cache
//!    file (byte-identical to the shard's `cache_text`) and truncates
//!    the WAL; an idle shard is skipped;
//! 3. **recovery** -- base + log replay restores every published
//!    decision: re-submitting the pre-crash working set is all cache
//!    hits, zero cold tunes;
//! 4. **torn writes** -- a corrupt or half-written WAL tail is truncated
//!    on disk, counted in `RouterStats` and `last_snapshot`, and the
//!    intact prefix still replays -- under both eviction policies;
//! 5. **GC** -- removing or replacing a shard deletes its persistence
//!    files, and compaction sweeps orphans and `.tmp` leftovers;
//! 6. **retry policy** -- a configurable attempt budget: exhausting it
//!    quarantines the key and serves `Served::Degraded` (counted
//!    distinctly from the per-attempt panic count), and a flaky WAL
//!    append never fails the publish itself.

use isaac_core::durability::{decode_wal, FaultIo, FaultPlan, WalRecord};
use isaac_core::{EvictionPolicy, IsaacTuner, OpKind, TrainOptions, TuneKey, TunedChoice};
use isaac_core::{ShapeKey, StdIo};
use isaac_device::specs::tesla_p100;
use isaac_device::{DType, DeviceSpec};
use isaac_gen::shapes::GemmShape;
use isaac_serve::{
    snapshot_file_name, wal_file_name, FaultKind, FaultTuner, Query, RetryPolicy, Served,
    TuneService,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Train one small GEMM model, once per process, and hand out cheap
/// clones via the text serialization (training dominates test time;
/// loading is milliseconds).
fn shared_model_path() -> &'static Path {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let tuner = IsaacTuner::train(
            tesla_p100(),
            OpKind::Gemm,
            TrainOptions {
                samples: 1_500,
                hidden: vec![16, 16],
                epochs: 2,
                top_k: 10,
                ..Default::default()
            },
        );
        let path = std::env::temp_dir().join("isaac_durability_shared_model.txt");
        tuner.save(&path).expect("save shared model");
        path
    })
}

fn fresh_tuner(spec: DeviceSpec) -> IsaacTuner {
    IsaacTuner::load(shared_model_path(), spec, OpKind::Gemm).expect("load shared model")
}

fn gemm_query(device: u16, m: u32, n: u32, k: u32) -> Query {
    Query::gemm(device, GemmShape::new(m, n, k, "N", "T", DType::F32))
}

/// A unique empty directory per test invocation.
fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "isaac_durability_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// A synthetic cache key: publishing via `TuneCache::insert` exercises
/// the journal without paying for a real cold tune.
fn synth_key(device: u16, m: u32) -> TuneKey {
    TuneKey {
        device,
        op: OpKind::Gemm,
        dtype: DType::F32,
        shape: ShapeKey::Gemm {
            m,
            n: 32,
            k: 64,
            trans_a: false,
            trans_b: true,
        },
    }
}

fn synth_choice(tag: f64) -> TunedChoice {
    TunedChoice {
        config: isaac_gen::GemmConfig::default(),
        predicted_gflops: tag,
        tflops: tag * 2.0,
        time_s: tag * 3.0,
    }
}

/// A long-enough interval that the background worker never compacts on
/// its own mid-test: every sweep in these tests is an explicit
/// `compact_now` (the drop-time flush still runs, which individual
/// tests account for).
const NEVER: Duration = Duration::from_secs(3_600);

#[test]
fn publishes_append_decoded_wal_records() {
    let dir = temp_dir("append");
    let service = TuneService::with_workers(1);
    let tuner = service.add_shard(0, fresh_tuner(tesla_p100()));
    service.enable_durability(&dir, NEVER);

    for m in 1..=4u32 {
        tuner
            .cache()
            .insert(synth_key(0, m), synth_choice(f64::from(m)));
    }

    let stats = service.stats();
    assert_eq!(stats.wal_appends, 4, "one record per publish");
    assert_eq!(stats.wal_append_errors, 0);
    assert!(stats.wal_bytes > 0);

    let bytes = std::fs::read(dir.join(wal_file_name(0, OpKind::Gemm))).expect("read wal");
    assert_eq!(stats.wal_bytes, bytes.len() as u64, "counter matches disk");
    let decode = decode_wal(&bytes, 0);
    assert_eq!(decode.torn_records, 0);
    assert_eq!(decode.valid_len, bytes.len());
    let keys: Vec<TuneKey> = decode.records.iter().map(|r| *r.key()).collect();
    assert_eq!(keys, (1..=4).map(|m| synth_key(0, m)).collect::<Vec<_>>());
    for record in &decode.records {
        assert!(matches!(record, WalRecord::Insert { .. }));
    }
    // (Eviction records are exercised by the bounded-cache torn-tail
    // test below, which journals through both eviction policies.)
    service.disable_snapshots();
}

#[test]
fn compaction_folds_wal_into_base_and_truncates() {
    let dir = temp_dir("compact");
    let service = TuneService::with_workers(1);
    let tuner = service.add_shard(3, fresh_tuner(tesla_p100()));
    service.enable_durability(&dir, NEVER);

    for m in 1..=5u32 {
        tuner
            .cache()
            .insert(synth_key(3, m), synth_choice(f64::from(m)));
    }
    let wal = dir.join(wal_file_name(3, OpKind::Gemm));
    let base = dir.join(snapshot_file_name(3, OpKind::Gemm));
    assert!(std::fs::metadata(&wal).expect("wal exists").len() > 0);

    let report = service.compact_now().expect("compact");
    assert_eq!(report.files, 1);
    assert_eq!(report.entries, 5);
    assert_eq!(std::fs::metadata(&wal).expect("wal").len(), 0, "truncated");
    assert_eq!(
        std::fs::read_to_string(&base).expect("base"),
        tuner.cache_text(),
        "base is byte-identical to the shard's serialized cache"
    );
    assert_eq!(service.stats().compactions, 1);
    assert_eq!(service.last_snapshot().expect("report stored").entries, 5);

    // Idle shard (clean cache, empty WAL): the next sweep skips it.
    let report = service.compact_now().expect("compact idle");
    assert_eq!(report.files, 0, "nothing dirty, nothing written");

    // New publishes land in the (now empty) WAL, not the base.
    tuner.cache().insert(synth_key(3, 6), synth_choice(6.0));
    assert!(std::fs::metadata(&wal).expect("wal").len() > 0);
    let report = service.compact_now().expect("compact again");
    assert_eq!(report.entries, 6);
    assert_eq!(std::fs::metadata(&wal).expect("wal").len(), 0);
    service.disable_snapshots();
}

#[test]
fn recovery_replays_base_then_log_with_zero_cold_tunes() {
    let dir = temp_dir("recover");
    let shapes: Vec<(u32, u32, u32)> = (0..6).map(|i| (64 + 16 * i, 64, 32)).collect();
    {
        let service = TuneService::with_workers(2);
        service.add_shard(0, fresh_tuner(tesla_p100()));
        service.enable_durability(&dir, NEVER);
        // Four decisions into the base...
        for &(m, n, k) in &shapes[..4] {
            let d = service.submit(&gemm_query(0, m, n, k)).wait();
            assert!(d.choice.is_some());
        }
        service.compact_now().expect("compact");
        // ...two more only in the WAL, then crash (no shutdown flush).
        for &(m, n, k) in &shapes[4..] {
            let d = service.submit(&gemm_query(0, m, n, k)).wait();
            assert!(d.choice.is_some());
        }
        service.disable_snapshots();
    }

    let service = TuneService::with_workers(2);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    let report = service.recover_all(&dir).expect("recover");
    assert_eq!(report.files, 1);
    assert_eq!(report.entries, 4, "base entries");
    assert_eq!(report.replayed, 2, "WAL tail replayed on top");
    assert_eq!(report.torn_records, 0);
    assert_eq!(report.unmatched, 0);

    let stats = service.stats();
    assert_eq!(stats.recovery_replayed, 2);
    assert_eq!(stats.recovery_torn_records, 0);
    assert_eq!(
        service.last_snapshot().expect("recovery report").replayed,
        2,
        "recovery report inspectable via last_snapshot before any sweep"
    );

    // The entire pre-crash working set is served from cache.
    for &(m, n, k) in &shapes {
        let d = service.submit(&gemm_query(0, m, n, k)).wait();
        assert_eq!(d.served, Served::Cache, "recovered key must be a hit");
    }
    assert_eq!(service.stats().cold_tunes, 0, "restored_cold_tunes == 0");
}

#[test]
fn torn_tail_is_truncated_counted_and_surfaced_under_both_policies() {
    for (tag, policy) in [
        ("lru", EvictionPolicy::Lru),
        ("cost", EvictionPolicy::CostAware),
    ] {
        let dir = temp_dir(&format!("torn_{tag}"));
        let published: Vec<TuneKey>;
        {
            let service = TuneService::with_workers(1);
            let mut shard = fresh_tuner(tesla_p100());
            shard.set_cache_capacity(4);
            shard.set_eviction_policy(policy);
            let tuner = service.add_shard(0, shard);
            service.enable_durability(&dir, NEVER);
            // 6 inserts through a capacity-4 cache: the log carries
            // eviction records interleaved with the inserts.
            for m in 1..=6u32 {
                tuner
                    .cache()
                    .insert(synth_key(0, m), synth_choice(f64::from(m)));
            }
            published = tuner
                .cache()
                .entries()
                .into_iter()
                .map(|(k, _, _)| k)
                .collect();
            assert_eq!(published.len(), 4);
            assert!(service.stats().wal_appends >= 8, "6 inserts + >=2 evicts");
            service.disable_snapshots();
        }

        // Tear the log: a half-written record plus trailing garbage.
        let wal = dir.join(wal_file_name(0, OpKind::Gemm));
        let mut bytes = std::fs::read(&wal).expect("read wal");
        let valid_len = decode_wal(&bytes, 0).valid_len;
        bytes.truncate(bytes.len() - 3);
        bytes.extend_from_slice(b"deadbeef not a record");
        std::fs::write(&wal, &bytes).expect("corrupt wal");

        let service = TuneService::with_workers(1);
        let mut shard = fresh_tuner(tesla_p100());
        shard.set_cache_capacity(4);
        shard.set_eviction_policy(policy);
        let tuner = service.add_shard(0, shard);
        let report = service.recover_all(&dir).expect("recover");
        assert!(
            report.torn_records >= 1,
            "{tag}: torn tail counted, got {report:?}"
        );
        assert_eq!(
            service.stats().recovery_torn_records,
            report.torn_records as u64,
            "{tag}: corruption surfaces in RouterStats"
        );
        assert_eq!(
            service.last_snapshot().expect("report").torn_records,
            report.torn_records,
            "{tag}: and via last_snapshot"
        );
        // Torn-write contract: the untrusted tail is dropped on disk
        // too, so resumed appends extend a clean log.
        let on_disk = std::fs::metadata(&wal).expect("wal").len();
        assert!(
            on_disk < valid_len as u64,
            "{tag}: disk log truncated past the torn record"
        );
        // The intact prefix replayed: every surviving record's key is
        // in its pre-crash state (the cut record's key may be absent).
        let recovered: Vec<TuneKey> = tuner
            .cache()
            .entries()
            .into_iter()
            .map(|(k, _, _)| k)
            .collect();
        for key in &recovered {
            assert!(
                published.contains(key),
                "{tag}: {key:?} recovered but never survived pre-crash"
            );
        }
        assert!(
            recovered.len() >= published.len() - 1,
            "{tag}: at most the torn record's key is lost"
        );
    }
}

#[test]
fn recovery_skips_malformed_base_lines_and_counts_them() {
    let dir = temp_dir("skipped");
    {
        let service = TuneService::with_workers(1);
        let tuner = service.add_shard(0, fresh_tuner(tesla_p100()));
        service.enable_durability(&dir, NEVER);
        for m in 1..=3u32 {
            tuner
                .cache()
                .insert(synth_key(0, m), synth_choice(f64::from(m)));
        }
        service.compact_now().expect("compact");
        service.disable_snapshots();
    }
    // A flaky disk scribbles over one base line.
    let base = dir.join(snapshot_file_name(0, OpKind::Gemm));
    let mut text = std::fs::read_to_string(&base).expect("base");
    let victim = text.lines().nth(1).expect("entry line").to_string();
    text = text.replace(&victim, "garbage line that parses as nothing");
    std::fs::write(&base, text).expect("rewrite base");

    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    let report = service.recover_all(&dir).expect("recover");
    assert_eq!(report.entries, 2, "surviving lines merged");
    assert_eq!(report.skipped, 1, "scribbled line counted, not silent");
    assert_eq!(service.stats().recovery_skipped_records, 1);
}

#[test]
fn removing_and_replacing_shards_gcs_their_files() {
    let dir = temp_dir("gc");
    let service = TuneService::with_workers(1);
    let t0 = service.add_shard(0, fresh_tuner(tesla_p100()));
    let t1 = service.add_shard(1, fresh_tuner(tesla_p100()));
    service.enable_durability(&dir, NEVER);
    t0.cache().insert(synth_key(0, 1), synth_choice(1.0));
    t1.cache().insert(synth_key(1, 1), synth_choice(1.0));
    service.compact_now().expect("compact");
    for device in [0u16, 1] {
        assert!(dir.join(snapshot_file_name(device, OpKind::Gemm)).exists());
        assert!(dir.join(wal_file_name(device, OpKind::Gemm)).exists());
    }

    // Decommissioned shard: both its files go.
    service.remove_shard(1, OpKind::Gemm).expect("remove");
    assert!(!dir.join(snapshot_file_name(1, OpKind::Gemm)).exists());
    assert!(!dir.join(wal_file_name(1, OpKind::Gemm)).exists());
    assert_eq!(service.stats().gc_removed, 2);

    // Replaced shard: stale files go, the successor journals fresh.
    let t0b = service
        .replace_shard(0, fresh_tuner(tesla_p100()))
        .map(|_| service.shard_tuner(0, OpKind::Gemm).expect("successor"))
        .expect("replace");
    assert!(!dir.join(snapshot_file_name(0, OpKind::Gemm)).exists());
    t0b.cache().insert(synth_key(0, 9), synth_choice(9.0));
    assert!(dir.join(wal_file_name(0, OpKind::Gemm)).exists());
    assert_eq!(service.stats().gc_removed, 4);

    // Orphans and crashed-compaction leftovers: swept by compaction.
    std::fs::write(dir.join(snapshot_file_name(7, OpKind::Gemm)), "stale").expect("orphan");
    // A crashed compaction's temp file -- for a long-gone shard, so the
    // live shard-0 compaction (whose own temp file is consumed by its
    // rename) does not race it.
    std::fs::write(
        dir.join(format!("{}.tmp", snapshot_file_name(9, OpKind::Gemm))),
        "leftover",
    )
    .expect("tmp leftover");
    std::fs::write(dir.join("unrelated.txt"), "keep me").expect("foreign file");
    let report = service.compact_now().expect("compact");
    assert_eq!(report.gc_removed, 2, "orphan + .tmp, not the foreign file");
    assert!(!dir.join(snapshot_file_name(7, OpKind::Gemm)).exists());
    assert!(dir.join("unrelated.txt").exists());
    service.disable_snapshots();
}

#[test]
fn retry_policy_bounds_attempts_and_counts_exhaustion() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    let fault = Arc::new(FaultTuner::new());
    service.set_tune_fault(Some(fault.clone()));

    // Budget of one: the first panic is terminal -- no retries. The
    // exhausted key is quarantined and served by the heuristic.
    service.set_retry_policy(RetryPolicy {
        max_attempts: 1,
        backoff: Duration::ZERO,
    });
    assert_eq!(service.retry_policy().max_attempts, 1);
    let doomed = gemm_query(0, 96, 64, 32);
    fault.fault_key(doomed.key(), &[FaultKind::Panic]);
    let d = service.submit(&doomed).wait();
    assert_eq!(d.served, Served::Degraded);
    assert!(
        d.choice.is_some(),
        "heuristic stand-in, not a dropped query"
    );
    assert!(service.is_quarantined(&doomed.key()));
    let stats = service.service_stats();
    assert_eq!(stats.tune_retries, 0, "budget of 1 never re-queues");
    assert_eq!(stats.retry_exhausted, 1, "terminal exhaustion counted");
    assert_eq!(service.flight_stats().leader_panics, 1);

    // Default budget: two panics are absorbed, the third attempt lands.
    service.set_retry_policy(RetryPolicy::default());
    let bumpy = gemm_query(0, 128, 64, 32);
    fault.fault_key(bumpy.key(), &[FaultKind::Panic, FaultKind::Panic]);
    let d = service.submit(&bumpy).wait();
    assert_eq!(d.served, Served::Tuned, "retries rode out the panics");
    let stats = service.service_stats();
    assert_eq!(stats.tune_retries, 2);
    assert_eq!(stats.retry_exhausted, 1, "unchanged: no new exhaustion");
    assert_eq!(service.flight_stats().leader_panics, 3);

    // A configured backoff delays the retry without losing it.
    service.set_retry_policy(RetryPolicy {
        max_attempts: 2,
        backoff: Duration::from_millis(5),
    });
    let slow = gemm_query(0, 160, 64, 32);
    fault.fault_key(slow.key(), &[FaultKind::Panic]);
    let d = service.submit(&slow).wait();
    assert_eq!(d.served, Served::Tuned);
    assert_eq!(service.service_stats().tune_retries, 3);
}

#[test]
fn flaky_append_never_fails_the_publish() {
    let dir = temp_dir("flaky");
    let service = TuneService::with_workers(1);
    let tuner = service.add_shard(0, fresh_tuner(tesla_p100()));
    // Second append fails once; the disk then heals.
    let io = Arc::new(FaultIo::new(FaultPlan {
        fail_append: Some(2),
        ..Default::default()
    }));
    service.enable_durability_with(&dir, NEVER, io.clone());

    for m in 1..=3u32 {
        tuner
            .cache()
            .insert(synth_key(0, m), synth_choice(f64::from(m)));
    }
    assert_eq!(tuner.cache().len(), 3, "every publish served from memory");
    assert!(!io.is_dead(), "a flaky append is not a crash");
    let stats = service.stats();
    assert_eq!(stats.wal_append_errors, 1);
    assert_eq!(stats.wal_appends, 2, "the dropped record is not counted");

    // The lost record is only in memory -- until compaction persists it.
    let on_disk = decode_wal(
        &std::fs::read(dir.join(wal_file_name(0, OpKind::Gemm))).expect("wal"),
        0,
    );
    assert_eq!(on_disk.records.len(), 2);
    service.compact_now().expect("compact");
    let service2 = TuneService::with_workers(1);
    service2.add_shard(0, fresh_tuner(tesla_p100()));
    let report = service2.recover_all_with(&dir, &StdIo).expect("recover");
    assert_eq!(report.entries, 3, "compaction healed the dropped record");
    service.disable_snapshots();
}
