//! End-to-end properties of the sharded serving front-end:
//!
//! 1. **single-flight invariant** -- N threads racing a cold key run
//!    exactly one cold tune; the other N-1 block and receive the
//!    identical `TunedChoice`;
//! 2. **batch dedup + routing** -- duplicate queries inside a batch are
//!    resolved once, devices route to their own shards, unknown devices
//!    are refused;
//! 3. **cross-device warm-start** -- a fresh shard seeded from a
//!    neighbour serves warm shapes from cache, with zero cold tunes.

use isaac_core::{IsaacTuner, OpKind, TrainOptions};
use isaac_device::specs::{gtx980ti, tesla_p100};
use isaac_device::{DType, DeviceSpec};
use isaac_gen::shapes::GemmShape;
use isaac_serve::{Query, Served, TunerRouter};
use std::path::{Path, PathBuf};
use std::sync::{Barrier, OnceLock};

/// Train one small GEMM model, once per process, and hand out cheap
/// clones via the text serialization (training dominates test time;
/// loading is milliseconds).
fn shared_model_path() -> &'static Path {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let tuner = IsaacTuner::train(
            tesla_p100(),
            OpKind::Gemm,
            TrainOptions {
                samples: 1_500,
                hidden: vec![16, 16],
                epochs: 2,
                top_k: 10,
                ..Default::default()
            },
        );
        let path = std::env::temp_dir().join("isaac_serve_shared_model.txt");
        tuner.save(&path).expect("save shared model");
        path
    })
}

fn fresh_tuner(spec: DeviceSpec) -> IsaacTuner {
    IsaacTuner::load(shared_model_path(), spec, OpKind::Gemm).expect("load shared model")
}

fn gemm_query(device: u16, m: u32, n: u32, k: u32) -> Query {
    Query::gemm(device, GemmShape::new(m, n, k, "N", "T", DType::F32))
}

#[test]
fn contended_cold_key_tunes_exactly_once() {
    const THREADS: usize = 4;
    let mut router = TunerRouter::new();
    let tuner = router.add_shard(0, fresh_tuner(tesla_p100()));
    let query = gemm_query(0, 96, 64, 48);

    let barrier = Barrier::new(THREADS);
    let decisions: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    barrier.wait();
                    router.submit(&query)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // THE invariant: exactly one cold tune ran, no matter how the race
    // played out. (A straggler descheduled past the leader's publish
    // legitimately re-leads a flight, but the leader-side cache re-peek
    // turns that into a hit -- so `led` may exceed 1 on a loaded host
    // while cold_tunes cannot.)
    let stats = router.stats();
    let flights = router.flight_stats();
    assert_eq!(stats.cold_tunes, 1, "exactly one cold tune ran");
    assert_eq!(tuner.cache_len(), 1, "one decision cached");
    assert!(flights.led >= 1);
    assert_eq!(
        stats.coalesced + stats.cache_hits,
        (THREADS - 1) as u64,
        "everyone else joined the flight or hit the freshly-filled cache"
    );

    // Every thread got the identical decision.
    let first = decisions[0].choice.clone().expect("a kernel is selected");
    for d in &decisions {
        assert_eq!(d.choice.as_ref(), Some(&first));
    }
    let tuned = decisions
        .iter()
        .filter(|d| d.served == Served::Tuned)
        .count();
    assert_eq!(tuned, 1, "exactly one decision reports the cold tune");

    // The dust has settled: the next submit is a plain cache hit.
    let again = router.submit(&query);
    assert_eq!(again.served, Served::Cache);
    assert_eq!(again.choice, Some(first));
}

#[test]
fn batches_dedupe_route_and_refuse_unknown_devices() {
    let mut router = TunerRouter::new();
    let t0 = router.add_shard(0, fresh_tuner(tesla_p100()));
    let t1 = router.add_shard(1, fresh_tuner(gtx980ti()));
    assert_eq!(router.devices(), vec![0, 1]);

    let hot = gemm_query(0, 96, 64, 48);
    let batch = [
        hot,                       // cold tune on shard 0
        gemm_query(1, 96, 64, 48), // same shape, different device: own cold tune
        hot,                       // in-batch duplicate
        gemm_query(9, 96, 64, 48), // no shard registered
        hot,                       // in-batch duplicate
    ];
    let decisions = router.submit_batch(&batch);
    assert_eq!(decisions.len(), batch.len());

    // Duplicates share the first occurrence's choice; they report
    // Coalesced because they did not run the cold tune themselves.
    assert_eq!(decisions[0].served, Served::Tuned);
    assert_eq!(decisions[2].served, Served::Coalesced);
    assert_eq!(decisions[4].served, Served::Coalesced);
    assert!(decisions[0].choice.is_some());
    assert_eq!(decisions[0].choice, decisions[2].choice);
    assert_eq!(decisions[0].choice, decisions[4].choice);

    // Same shape on another device is its own cold tune, keyed apart.
    assert!(decisions[1].choice.is_some());
    assert_eq!(t0.cache_len(), 1);
    assert_eq!(t1.cache_len(), 1);
    assert_eq!(t0.cache().entries()[0].0.device, 0);
    assert_eq!(t1.cache().entries()[0].0.device, 1);

    // Unknown device is refused, not misrouted.
    assert_eq!(decisions[3].served, Served::NoShard);
    assert_eq!(decisions[3].choice, None);

    let stats = router.stats();
    assert_eq!(stats.queries, 5);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.batch_deduped, 2);
    assert_eq!(stats.cold_tunes, 2);
    assert_eq!(stats.no_shard, 1);
    assert!(stats.dedup_ratio() >= 2.0 / 5.0);

    // A repeat batch is all cache hits and dedup.
    let again = router.submit_batch(&[hot, hot]);
    assert_eq!(again[0].served, Served::Cache);
    assert_eq!(again[1], again[0]);
    assert_eq!(router.stats().cold_tunes, 2, "no further cold tunes");
}

#[test]
fn warm_started_shard_serves_without_cold_tunes() {
    let mut router = TunerRouter::new();
    router.add_shard(0, fresh_tuner(tesla_p100()));
    router.add_shard(1, fresh_tuner(tesla_p100()));

    // Shard 0 learns two shapes the hard way.
    let shapes = [gemm_query(0, 96, 64, 48), gemm_query(0, 256, 64, 512)];
    for q in &shapes {
        assert!(router.submit(q).choice.is_some());
    }
    let cold_tunes_before = router.stats().cold_tunes;

    // Shard 1 warm-starts from shard 0: re-benchmarks, no cold tunes.
    let report = router
        .warm_start(1, 0, OpKind::Gemm, 10)
        .expect("both shards exist");
    assert_eq!(report.candidates, 2);
    assert_eq!(report.seeded, 2, "same device model: everything transfers");
    assert_eq!(router.stats().cold_tunes, cold_tunes_before);

    // The warm shapes are cache hits on shard 1.
    for q in &shapes {
        let warm = Query { device: 1, ..*q };
        let d = router.submit(&warm);
        assert_eq!(d.served, Served::Cache, "warm-started shape is a hit");
        assert!(d.choice.is_some());
    }
    assert_eq!(
        router.stats().cold_tunes,
        cold_tunes_before,
        "warm-started shard never cold-tunes the seeded shapes"
    );

    // Missing shards are reported, not panicked on.
    assert!(router.warm_start(2, 0, OpKind::Gemm, 10).is_none());
    assert!(router.warm_start(1, 0, OpKind::Conv, 10).is_none());
}
