//! SLO behaviour of the serving front door:
//!
//! 1. **admission never poisons single-flight** -- an over-quota submit
//!    resolves `Served::Rejected` immediately while a within-quota
//!    waiter on the same key still receives the tuned decision;
//! 2. **deadline shedding** -- a queued job whose only waiter timed out
//!    is demoted to the background lane (counted in
//!    `ServiceStats::shed`), still runs there, and warms the cache;
//! 3. **per-tenant stats stay truthful under concurrent submits** --
//!    the quota is an exact upper bound on in-flight misses no matter
//!    how many threads race it;
//! 4. **predictive prewarm** -- a hot decision on one shard is
//!    re-benched into a neighbour shard in the background, turning the
//!    neighbour's next miss into a cache hit.

use isaac_core::{IsaacTuner, OpKind, TrainOptions};
use isaac_device::specs::tesla_p100;
use isaac_device::{DType, DeviceSpec};
use isaac_gen::shapes::GemmShape;
use isaac_serve::{Query, Served, SubmitOptions, TuneService};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Train one small GEMM model, once per process, and hand out cheap
/// clones via the text serialization.
fn shared_model_path() -> &'static Path {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let tuner = IsaacTuner::train(
            tesla_p100(),
            OpKind::Gemm,
            TrainOptions {
                samples: 1_500,
                hidden: vec![16, 16],
                epochs: 2,
                top_k: 10,
                ..Default::default()
            },
        );
        let path = std::env::temp_dir().join("isaac_slo_shared_model.txt");
        tuner.save(&path).expect("save shared model");
        path
    })
}

fn fresh_tuner(spec: DeviceSpec) -> IsaacTuner {
    IsaacTuner::load(shared_model_path(), spec, OpKind::Gemm).expect("load shared model")
}

fn gemm_query(device: u16, m: u32, n: u32, k: u32) -> Query {
    Query::gemm(device, GemmShape::new(m, n, k, "N", "T", DType::F32))
}

/// Spin (with a timeout) until an asynchronous gauge settles.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn over_quota_submit_rejects_without_poisoning_the_flight() {
    let service = TuneService::with_workers(2);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.set_tenant_quota(5, Some(1));
    service.pause();

    let query = gemm_query(0, 128, 64, 96);
    let opts = SubmitOptions {
        tenant: 5,
        ..SubmitOptions::default()
    };
    let admitted = service.submit_with(&query, &opts);
    assert!(!admitted.is_ready(), "first miss is admitted and pending");

    // Same tenant, same key, over quota: rejected instantly, and the
    // pending flight is untouched.
    let rejected = service.submit_with(&query, &opts);
    let decision = rejected.try_get().expect("rejection resolves inline");
    assert_eq!(decision.served, Served::Rejected);
    assert!(decision.choice.is_none());
    assert_eq!(service.service_stats().rejected, 1);

    service.resume();
    let decision = admitted.wait();
    assert_eq!(
        decision.served,
        Served::Tuned,
        "the admitted waiter still owns the tune"
    );
    assert!(decision.choice.is_some());

    let stats = service
        .tenant_stats()
        .into_iter()
        .find(|t| t.tenant == 5)
        .expect("tenant 5 was seen");
    assert_eq!((stats.submitted, stats.admitted, stats.rejected), (2, 1, 1));
    assert_eq!(stats.in_flight, 0, "the charge freed with the ticket");

    // The published decision is served from cache -- no admission
    // involved, even though the tenant just got rejected.
    assert_eq!(
        service.submit_with(&query, &opts).wait().served,
        Served::Cache
    );
}

#[test]
fn job_with_only_timed_out_waiters_is_shed_to_background_and_still_tunes() {
    let service = TuneService::with_workers(2);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.pause();

    let query = gemm_query(0, 160, 64, 96);
    let ticket = service.submit_with(
        &query,
        &SubmitOptions {
            deadline: Some(Duration::ZERO),
            ..SubmitOptions::default()
        },
    );
    // Consume the expiry while the queue is paused: when a worker
    // reaches the job, its only waiter is already past its deadline.
    assert_eq!(ticket.wait().served, Served::TimedOut);
    drop(ticket);

    service.resume();
    wait_until("the job to be shed and run in the background", || {
        let stats = service.service_stats();
        stats.shed >= 1 && stats.queue_depth == 0 && stats.background_depth == 0
    });
    wait_until("the demoted flight to complete", || {
        service.in_flight() == 0
    });

    // The demoted tune still published its decision.
    assert_eq!(service.submit(&query).wait().served, Served::Cache);
    assert_eq!(service.service_stats().shed, 1);
}

#[test]
fn tenant_stats_stay_truthful_under_concurrent_submits() {
    let service = std::sync::Arc::new(TuneService::with_workers(2));
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.set_tenant_quota(9, Some(2));
    service.pause();

    // Eight threads race distinct keys under one tenant: exactly two
    // may be in flight, whatever the interleaving.
    let tickets: Vec<_> = (0..8u32)
        .map(|i| {
            let service = std::sync::Arc::clone(&service);
            std::thread::spawn(move || {
                service.submit_with(
                    &gemm_query(0, 192 + 8 * i, 64, 96),
                    &SubmitOptions {
                        tenant: 9,
                        ..SubmitOptions::default()
                    },
                )
            })
        })
        .map(|h| h.join().expect("submitter panicked"))
        .collect();

    let stats = service
        .tenant_stats()
        .into_iter()
        .find(|t| t.tenant == 9)
        .expect("tenant 9 was seen");
    assert_eq!(stats.submitted, 8);
    assert_eq!(stats.admitted, 2, "quota is an exact bound");
    assert_eq!(stats.rejected, 6);
    assert_eq!(stats.in_flight, 2);
    assert_eq!(service.service_stats().rejected, 6);

    service.resume();
    let mut served = Vec::new();
    for ticket in tickets {
        served.push(ticket.wait().served);
    }
    assert_eq!(served.iter().filter(|s| **s == Served::Tuned).count(), 2);
    assert_eq!(served.iter().filter(|s| **s == Served::Rejected).count(), 6);

    let stats = service
        .tenant_stats()
        .into_iter()
        .find(|t| t.tenant == 9)
        .expect("tenant 9 was seen");
    assert_eq!(stats.in_flight, 0, "both charges freed on resolution");
}

#[test]
fn prewarm_hot_seeds_a_neighbour_shard_in_the_background() {
    let service = TuneService::with_workers(2);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.add_shard(1, fresh_tuner(tesla_p100()));

    // Make one decision hot on shard 0: tune it, then hit it.
    let on_dev0 = gemm_query(0, 224, 64, 96);
    assert_eq!(service.submit(&on_dev0).wait().served, Served::Tuned);
    assert_eq!(service.submit(&on_dev0).wait().served, Served::Cache);

    let enqueued = service.prewarm_hot(1);
    assert_eq!(enqueued, 1, "one hot decision, one uncovered neighbour");
    wait_until("the prewarm to run", || {
        service.service_stats().prewarm_jobs >= 1
    });
    let stats = service.service_stats();
    assert_eq!(stats.prewarmed, 1, "the neighbour cache was seeded");

    // The lagged tenant's first query on shard 1 is now a hit, not a
    // cold tune.
    let on_dev1 = gemm_query(1, 224, 64, 96);
    assert_eq!(service.submit(&on_dev1).wait().served, Served::Cache);

    // Re-running finds everything covered: nothing to enqueue.
    assert_eq!(service.prewarm_hot(1), 0);
}
