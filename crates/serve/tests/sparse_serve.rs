//! The op-family acceptance test: the sparse family, added entirely in
//! `isaac-core`/`isaac-sparse`, flows through the **unchanged** serving
//! layer -- submit/single-flight, eviction, snapshot/restore, WAL
//! recovery (including forward-compat skip-and-count) and the
//! quarantine/repair loop all work for `OpKind::Sparse` queries without
//! one serve-side branch on the operation. The final test enforces that
//! claim structurally: it scans `crates/serve/src` and fails if any
//! non-test, non-doc line mentions a concrete `OpKind` variant or a
//! per-op tuner method.

use isaac_core::{
    crc32, sparse_csr, IsaacTuner, OpKind, SparseOp, SparseShape, TrainOptions, TuneKey,
};
use isaac_device::specs::tesla_p100;
use isaac_device::{DType, DeviceSpec};
use isaac_gen::GemmConfig;
use isaac_serve::{
    parse_snapshot_file_name, snapshot_file_name, wal_file_name, BreakerConfig, FaultKind,
    FaultTuner, QuarantineConfig, Query, Served, TuneService,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Train one small sparse model, once per process; tests load cheap
/// clones from the text serialization.
fn shared_model_path() -> &'static Path {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let tuner = IsaacTuner::train(
            tesla_p100(),
            OpKind::Sparse,
            TrainOptions {
                samples: 2_000,
                hidden: vec![16, 16],
                epochs: 2,
                top_k: 10,
                ..Default::default()
            },
        );
        let path = std::env::temp_dir().join("isaac_sparse_serve_shared_model.txt");
        tuner.save(&path).expect("save shared sparse model");
        path
    })
}

fn fresh_tuner(spec: DeviceSpec) -> IsaacTuner {
    IsaacTuner::load(shared_model_path(), spec, OpKind::Sparse).expect("load shared sparse model")
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "isaac_sparse_serve_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// An SpMV query for a seeded banded matrix, keyed (like production) by
/// the matrix's *structure*.
fn banded_query(device: u16, rows: usize) -> Query {
    let a = sparse_csr::banded(rows, 4, 11);
    Query::sparse(
        device,
        SparseShape::from_csr(SparseOp::Spmv, &a, DType::F32),
    )
}

fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Submit / single-flight / cache-hit / structural keying, with not one
/// sparse-aware line in the serving layer.
#[test]
fn sparse_queries_flow_through_the_unchanged_front_door() {
    let service = TuneService::with_workers(2);
    let tuner = service.add_shard(0, fresh_tuner(tesla_p100()));
    let q = banded_query(0, 512);
    assert_eq!(q.op(), OpKind::Sparse);

    // In-batch duplicates of a cold sparse key coalesce onto one tune.
    let decisions: Vec<_> = service
        .submit_batch(&[q, q, q])
        .into_iter()
        .map(|t| t.wait())
        .collect();
    let tuned = decisions
        .iter()
        .filter(|d| d.served == Served::Tuned)
        .count();
    let coalesced = decisions
        .iter()
        .filter(|d| d.served == Served::Coalesced)
        .count();
    assert_eq!((tuned, coalesced), (1, 2), "one cold tune, two joiners");
    let first = decisions[0].choice.clone().expect("a kernel is selected");
    for d in &decisions {
        assert_eq!(d.choice.as_ref(), Some(&first), "identical decision");
    }
    assert_eq!(service.stats().cold_tunes, 1);
    assert_eq!(tuner.cache_len(), 1);

    // The decision is keyed by structure: a *different* matrix with the
    // same structural features is a cache hit, no new tune.
    let same_structure = {
        let mut b = sparse_csr::banded(512, 4, 11);
        for v in &mut b.vals {
            *v *= 3.0; // same pattern, different values
        }
        Query::sparse(0, SparseShape::from_csr(SparseOp::Spmv, &b, DType::F32))
    };
    let d = service.submit(&same_structure).wait();
    assert_eq!(d.served, Served::Cache);
    assert_eq!(d.choice, Some(first));

    // The same matrix under a different sparse op is its own key...
    let trsv = {
        let a = sparse_csr::banded(512, 4, 11);
        Query::sparse(0, SparseShape::from_csr(SparseOp::Sptrsv, &a, DType::F32))
    };
    assert_ne!(trsv.key(), q.key());
    // ...and an unknown device is refused, not misrouted.
    let lost = Query { device: 9, ..q };
    assert_eq!(service.submit(&lost).wait().served, Served::NoShard);
}

/// Capacity pressure on a sparse shard evicts by the cache's policy,
/// exactly like any other family.
#[test]
fn sparse_shard_evicts_under_capacity_pressure() {
    let service = TuneService::with_workers(2);
    let mut shard = fresh_tuner(tesla_p100());
    shard.set_cache_capacity(2);
    let tuner = service.add_shard(0, shard);

    for rows in [256, 384, 512] {
        assert!(service
            .submit(&banded_query(0, rows))
            .wait()
            .choice
            .is_some());
    }
    assert_eq!(service.stats().cold_tunes, 3);
    assert_eq!(tuner.cache_len(), 2, "bounded cache holds the cap");
    assert!(
        tuner.cache_stats().evictions >= 1,
        "the overflow was evicted, not dropped silently"
    );
}

/// Snapshot files for sparse shards use the same `shard-<dev>-<op>`
/// naming leg, and a restored fleet serves the old working set from
/// cache with zero cold tunes.
#[test]
fn sparse_snapshots_restore_into_a_fresh_fleet() {
    let name = snapshot_file_name(0, OpKind::Sparse);
    assert_eq!(parse_snapshot_file_name(&name), Some((0, OpKind::Sparse)));

    let dir = temp_dir("snapshot");
    let queries = [banded_query(0, 256), banded_query(0, 512)];
    {
        let service = TuneService::with_workers(2);
        service.add_shard(0, fresh_tuner(tesla_p100()));
        for q in &queries {
            assert!(service.submit(q).wait().choice.is_some());
        }
        let report = service.snapshot_all(&dir).expect("snapshot");
        assert_eq!((report.files, report.entries), (1, 2));
        assert!(dir.join(&name).exists());
    }

    let service = TuneService::with_workers(2);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    let report = service.restore_all(&dir).expect("restore");
    assert_eq!((report.entries, report.skipped), (2, 0));
    for q in &queries {
        assert_eq!(service.submit(q).wait().served, Served::Cache);
    }
    assert_eq!(service.stats().cold_tunes, 0, "restored set never re-tunes");
    let _ = std::fs::remove_dir_all(&dir);
}

/// WAL recovery of a sparse shard, including the forward-compat
/// contract: a CRC-valid record from a future format version is
/// skipped and *counted* (`recovery_skipped_records`), and the valid
/// records after it still replay.
#[test]
fn sparse_wal_recovery_skips_future_records_and_replays_the_rest() {
    let dir = temp_dir("recover");
    let shape = {
        let a = sparse_csr::banded(512, 4, 11);
        SparseShape::from_csr(SparseOp::Spmv, &a, DType::F32)
    };
    // Hand-write the shard's WAL: a v-next record this build cannot
    // parse (future op family "sfft"), then a valid sparse insert.
    let frame = |body: &str| format!("{:08x} {body}\n", crc32(body.as_bytes()));
    let vnext = frame("I sfft_n1024_b8 1 1 1 1 1 1 1 1 1 1.0e2 2.0e-1 3.0e-3");
    let insert = frame(&format!(
        "I {} 1 1 1 1 1 1 1 1 1 1.0e2 2.0e-1 3.0e-3",
        TuneKey::sparse(&shape).name()
    ));
    std::fs::write(
        dir.join(wal_file_name(0, OpKind::Sparse)),
        format!("{vnext}{insert}"),
    )
    .expect("write wal");

    let service = TuneService::with_workers(2);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    let report = service.recover_all(&dir).expect("recover");
    assert_eq!(report.replayed, 1, "the record after the skip replays");
    assert_eq!(report.skipped, 1, "the v-next record is counted");
    assert_eq!(report.torn_records, 0, "nothing was treated as torn");
    assert_eq!(service.stats().recovery_skipped_records, 1);

    // The replayed decision serves without a tune.
    let d = service.submit(&Query::sparse(0, shape)).wait();
    assert_eq!(d.served, Served::Cache);
    assert_eq!(service.stats().cold_tunes, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The self-healing loop is op-agnostic too: a poisoned sparse key
/// degrades to the sparse family's heuristic, quarantines, and repairs
/// back to an authoritative tuned entry once healed.
#[test]
fn sparse_keys_quarantine_and_repair_like_any_other_family() {
    let service = TuneService::with_workers(1);
    service.add_shard(0, fresh_tuner(tesla_p100()));
    service.set_breaker_config(BreakerConfig {
        window: 8,
        failure_threshold: 3,
        open_ttl: Duration::from_millis(15),
        max_open_ttl: Duration::from_millis(200),
        latency_slo: None,
    });
    service.set_quarantine_config(QuarantineConfig {
        ttl: Duration::from_millis(10),
        max_ttl: Duration::from_millis(100),
    });
    let fault = Arc::new(FaultTuner::new());
    service.set_tune_fault(Some(fault.clone()));

    let query = banded_query(0, 512);
    fault.poison_key(query.key(), FaultKind::Error);
    let d = service.submit(&query).wait();
    assert_eq!(d.served, Served::Degraded);
    assert!(service.is_quarantined(&query.key()));
    // The stand-in is the sparse family's model-free heuristic.
    assert_eq!(
        d.choice.expect("heuristic stand-in").config,
        GemmConfig::from_vector([1; 9]),
        "degraded sparse answers come from heuristic_sparse"
    );

    // Quarantined answers are instant and burn no further attempts.
    let attempts = fault.attempts(&query.key());
    let again = service.submit(&query).wait();
    assert_eq!(again.served, Served::Degraded);
    assert_eq!(fault.attempts(&query.key()), attempts);

    // Heal: the background repair upgrades the key to a real tune.
    fault.heal(&query.key());
    wait_until("the sparse repair to land", || {
        service.stats().repair_upgrades == 1
    });
    assert!(!service.is_quarantined(&query.key()));
    assert_eq!(service.submit(&query).wait().served, Served::Cache);
}

/// The structural claim behind all of the above: no non-test,
/// non-doc-comment line in `crates/serve/src` mentions a concrete
/// `OpKind` variant or calls a per-op tuner method. (Typed convenience
/// constructors like `Query::gemm` build a `KeyShape` variant; what is
/// banned is *dispatching* on the operation.)
#[test]
fn serve_sources_contain_no_per_op_dispatch() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let forbidden = [
        "OpKind::Gemm",
        "OpKind::Conv",
        "OpKind::Sparse",
        ".tune_gemm",
        ".tune_conv",
        ".tune_sparse",
        ".heuristic_gemm",
        ".heuristic_conv",
        ".heuristic_sparse",
    ];
    let mut offenders = Vec::new();
    for entry in std::fs::read_dir(&src).expect("read serve/src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read source");
        // Test modules may mention variants (e.g. file-name roundtrip
        // fixtures); production code must not.
        let production = text.split("#[cfg(test)]").next().unwrap_or("");
        for (lineno, line) in production.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("///") || trimmed.starts_with("//!") || trimmed.starts_with("//")
            {
                continue;
            }
            for token in forbidden {
                if line.contains(token) {
                    offenders.push(format!("{}:{}: {token}", path.display(), lineno + 1));
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "serve-layer per-op dispatch found:\n{}",
        offenders.join("\n")
    );
}
