//! Tuning configurations: the *tuning parameters* of the search space.

use crate::shapes::GemmShape;

/// How out-of-tile bounds are enforced (the Section 8.3 ablation).
///
/// All modes compute identical results; they differ in instruction/traffic
/// overhead, which the analytical profile charges accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BoundsMode {
    /// PTX predication: `@%p`-guarded memory ops, ~2% overhead.
    #[default]
    PtxPredicated,
    /// CUDA-C style explicit compare + branch around each guarded access
    /// (what the paper's first CUDA/OpenCL backend produced): 15-20%.
    CudaStyle,
    /// Pad the inputs up to tile multiples on the host instead of checking
    /// bounds: extra copies and padded traffic.
    Padded,
}

impl BoundsMode {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            BoundsMode::PtxPredicated => "ptx-predicated",
            BoundsMode::CudaStyle => "cuda-style",
            BoundsMode::Padded => "padded",
        }
    }
}

/// The ten GEMM tuning parameters of paper Section 4 (8 shown in Table 6
/// plus the vector width and the bounds-check mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmConfig {
    /// Per-thread tile rows (paper `Ms`).
    pub ms: u32,
    /// Per-thread tile columns (`Ns`).
    pub ns: u32,
    /// Per-block tile rows (`ML`).
    pub ml: u32,
    /// Per-block tile columns (`NL`).
    pub nl: u32,
    /// Reduction slice depth prefetched into shared memory per iteration
    /// and per KL-group (`U`).
    pub u: u32,
    /// Per-thread reduction split: independent accumulator sets (`Ks`).
    pub ks: u32,
    /// Intra-block reduction split: thread groups along K (`KL`).
    pub kl: u32,
    /// Grid-level reduction split, accumulated with global atomics (`KG`).
    pub kg: u32,
    /// Vector width of global loads (1, 2 or 4 elements).
    pub vec: u32,
    /// Bounds-checking strategy.
    pub bounds: BoundsMode,
}

impl Default for GemmConfig {
    fn default() -> Self {
        // A reasonable mid-size kernel: 64x64 block tile, 8x8 thread tile.
        GemmConfig {
            ms: 8,
            ns: 8,
            ml: 64,
            nl: 64,
            u: 8,
            ks: 1,
            kl: 1,
            kg: 1,
            vec: 4,
            bounds: BoundsMode::PtxPredicated,
        }
    }
}

impl GemmConfig {
    /// Threads along the M dimension of the block tile.
    #[inline]
    pub fn tm(&self) -> u32 {
        self.ml / self.ms.max(1)
    }

    /// Threads along the N dimension.
    #[inline]
    pub fn tn(&self) -> u32 {
        self.nl / self.ns.max(1)
    }

    /// Total threads per block: `(ML/MS) * (NL/NS) * KL`.
    #[inline]
    pub fn threads(&self) -> u32 {
        self.tm() * self.tn() * self.kl
    }

    /// Shared-memory K depth per iteration: `U * KL`.
    #[inline]
    pub fn uk(&self) -> u32 {
        self.u * self.kl
    }

    /// Grid dimensions for a given shape: `(ceil(M/ML), ceil(N/NL), KG)`.
    pub fn grid(&self, shape: &GemmShape) -> [u32; 3] {
        [
            shape.m.div_ceil(self.ml),
            shape.n.div_ceil(self.nl),
            self.kg,
        ]
    }

    /// K elements assigned to each grid-z slice, rounded up to the vector
    /// width so vectorized K-contiguous loads stay aligned.
    pub fn kchunk(&self, shape: &GemmShape) -> u32 {
        let raw = shape.k.div_ceil(self.kg);
        raw.div_ceil(self.vec) * self.vec
    }

    /// Shared-memory elements required: the A and B tiles, plus the
    /// KL-reduction buffer when KL > 1 (laid out after the tiles in the
    /// same segment).
    pub fn smem_elems(&self) -> u32 {
        let tiles = (self.ml + self.nl) * self.uk();
        let reduction = if self.kl > 1 { self.ml * self.nl } else { 0 };
        tiles.max(reduction)
    }

    /// Vector loads per thread per iteration for the A tile.
    pub fn loads_a(&self) -> u32 {
        (self.ml * self.uk()) / (self.threads() * self.vec).max(1)
    }

    /// Vector loads per thread per iteration for the B tile.
    pub fn loads_b(&self) -> u32 {
        (self.nl * self.uk()) / (self.threads() * self.vec).max(1)
    }

    /// Mangled kernel name for a shape, e.g.
    /// `sgemm_nt_ml64x64_ms8x8_u8_k1.1.1_v4`.
    pub fn name(&self, shape: &GemmShape) -> String {
        format!(
            "{}gemm_{}_ml{}x{}_ms{}x{}_u{}_k{}.{}.{}_v{}",
            shape.dtype.blas_prefix(),
            shape.layout().to_lowercase(),
            self.ml,
            self.nl,
            self.ms,
            self.ns,
            self.u,
            self.ks,
            self.kl,
            self.kg,
            self.vec
        )
    }

    /// The tuning-parameter vector in canonical order, used as model
    /// features and for serialization.
    pub fn as_vector(&self) -> [u32; 9] {
        [
            self.ms, self.ns, self.ml, self.nl, self.u, self.ks, self.kl, self.kg, self.vec,
        ]
    }

    /// Inverse of [`GemmConfig::as_vector`].
    pub fn from_vector(v: [u32; 9]) -> Self {
        GemmConfig {
            ms: v[0],
            ns: v[1],
            ml: v[2],
            nl: v[3],
            u: v[4],
            ks: v[5],
            kl: v[6],
            kg: v[7],
            vec: v[8],
            bounds: BoundsMode::PtxPredicated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isaac_device::DType;

    #[test]
    fn default_config_geometry() {
        let c = GemmConfig::default();
        assert_eq!(c.tm(), 8);
        assert_eq!(c.tn(), 8);
        assert_eq!(c.threads(), 64);
        assert_eq!(c.uk(), 8);
        assert_eq!(c.smem_elems(), 128 * 8);
    }

    #[test]
    fn grid_covers_shape_with_padding() {
        let c = GemmConfig::default();
        let s = GemmShape::new(100, 100, 64, "N", "N", DType::F32);
        assert_eq!(c.grid(&s), [2, 2, 1]);
    }

    #[test]
    fn kchunk_is_vector_aligned_and_covers_k() {
        let mut c = GemmConfig {
            kg: 3,
            vec: 4,
            ..Default::default()
        };
        let s = GemmShape::new(64, 64, 1000, "N", "N", DType::F32);
        let kc = c.kchunk(&s);
        assert_eq!(kc % 4, 0);
        assert!(kc * 3 >= 1000);
        c.kg = 1;
        assert!(c.kchunk(&s) >= 1000);
    }

    #[test]
    fn kl_split_multiplies_threads_and_smem() {
        let c = GemmConfig {
            kl: 4,
            ..Default::default()
        };
        assert_eq!(c.threads(), 256);
        assert_eq!(c.uk(), 32);
        // Reduction buffer (64*64) < tiles (128*32), tiles win.
        assert_eq!(c.smem_elems(), 128 * 32);
        let c2 = GemmConfig {
            kl: 2,
            u: 1,
            ..Default::default()
        };
        // Tiles 128*2=256 < reduction 4096.
        assert_eq!(c2.smem_elems(), 4096);
    }

    #[test]
    fn loads_partition_the_tile() {
        let c = GemmConfig::default();
        // ML*UK / (threads*vec) = 64*8/(64*4) = 2
        assert_eq!(c.loads_a(), 2);
        assert_eq!(c.loads_b(), 2);
    }

    #[test]
    fn vector_roundtrip() {
        let c = GemmConfig {
            ms: 2,
            ns: 4,
            ml: 32,
            nl: 16,
            u: 16,
            ks: 2,
            kl: 8,
            kg: 32,
            vec: 2,
            bounds: BoundsMode::PtxPredicated,
        };
        assert_eq!(GemmConfig::from_vector(c.as_vector()), c);
    }

    #[test]
    fn name_mangles_all_params() {
        let c = GemmConfig::default();
        let s = GemmShape::new(512, 512, 512, "N", "T", DType::F64);
        let n = c.name(&s);
        assert_eq!(n, "dgemm_nt_ml64x64_ms8x8_u8_k1.1.1_v4");
    }
}
