//! Multi-channel convolution kernels via implicit GEMM (paper Section 3.3).
//!
//! The convolution is reformulated as an implicit matrix multiplication
//! with `M' = K` (filters), `N' = NPQ` (output pixels) and `K' = CRS`
//! (reduction):
//!
//! * the "A" operand is the filter tensor `F[C][R][S][K]`, whose `k` axis
//!   is fastest -- exactly a column-major `M' x K'` matrix;
//! * the "B" operand is a *virtual* matrix of image patches. Element
//!   `(kk, j)` with `kk = (c*R + r)*S + s` and `j = (p*Q + q)*N + n` lives
//!   at `I[d(kk) + (p*W + q)*N + n]` where the *indirection table*
//!   `d(kk) = ((c*H + r)*W + s)*N` is precomputed on the host
//!   ([`indirection_table`]) and passed as an extra kernel argument. The
//!   expensive `div`/`mod` chains run once per cooperative load in the
//!   prologue; the inner loop only performs one table lookup per slice --
//!   this is the paper's "scrambled while being stored to shared memory,
//!   using an indirection table in order to alleviate integer arithmetics
//!   in the algorithm's inner loop".
//!
//! Tiling, prefetching, and the three reduction splits (`Ks`, `KL` -> CS/CL
//! analogues, `KG` -> CG) are inherited from the GEMM parameterization; the
//! reduction split runs over the flattened `CRS` axis rather than `C` alone
//! (a documented simplification -- see DESIGN.md).

use crate::config::GemmConfig;
use crate::legality::{self, ConfigIssue};
use crate::shapes::{ConvShape, GemmShape};
use isaac_device::{DType, DeviceSpec};
use isaac_ir::ir::Kernel;
use isaac_ir::vm::{Arg, GpuFault, GpuMemory, LaunchStats, Vm};
use isaac_ir::{BinOp, CmpOp, KernelBuilder, Operand, RegId, Sreg, Ty};

/// A lowered convolution kernel plus launch geometry and its host-side
/// indirection table.
#[derive(Debug, Clone)]
pub struct BuiltConv {
    /// Executable IR.
    pub kernel: Kernel,
    /// Grid dimensions.
    pub grid: [u32; 3],
    /// Threads per block.
    pub threads: u32,
    /// K' (=CRS) elements per grid-z slice.
    pub kchunk: u32,
    /// The indirection table `d(kk)`, one entry per `kk` in `0..CRS`.
    pub lut: Vec<i32>,
}

/// The GEMM-shape stand-in used for legality/profiling of a convolution:
/// A is effectively non-transposed (contiguous along `M' = K`), the patch
/// matrix behaves like a transposed B (contiguous along `N'`).
pub fn equivalent_gemm(shape: &ConvShape) -> GemmShape {
    GemmShape {
        m: shape.k,
        n: shape.npq(),
        k: shape.crs(),
        trans_a: false,
        trans_b: true,
        dtype: shape.dtype,
    }
}

/// Legality of a convolution configuration: the implicit-GEMM rules plus
/// batch-alignment of vectorized patch loads (a vector must not cross an
/// image boundary along `n`).
pub fn check(cfg: &GemmConfig, shape: &ConvShape, spec: &DeviceSpec) -> Result<(), ConfigIssue> {
    let g = equivalent_gemm(shape);
    legality::check(cfg, &g, spec)?;
    if cfg.vec > 1 && !shape.n.is_multiple_of(cfg.vec) {
        return Err(ConfigIssue::Vectorization);
    }
    Ok(())
}

/// The physical subset of [`check`] against a precomputed implicit-GEMM
/// view: everything except membership in the curated value lists (and
/// the `equivalent_gemm` conversion, which depends only on the shape).
/// The runtime query engine walks the in-space decoded table, so it
/// hoists both out of its ~500k-candidate loop;
/// `check(cfg, shape, spec) == in_space(cfg).and(check_physical(cfg,
/// &equivalent_gemm(shape), shape.n, spec))` by construction.
pub fn check_physical(
    cfg: &GemmConfig,
    gemm_view: &GemmShape,
    batch_n: u32,
    spec: &DeviceSpec,
) -> Result<(), ConfigIssue> {
    legality::check_physical(cfg, gemm_view, spec)?;
    if cfg.vec > 1 && !batch_n.is_multiple_of(cfg.vec) {
        return Err(ConfigIssue::Vectorization);
    }
    Ok(())
}

/// Compute the indirection table: `d(kk) = ((c*H + r)*W + s) * N` for
/// `kk = (c*R + r)*S + s`.
pub fn indirection_table(shape: &ConvShape) -> Vec<i32> {
    let mut lut = Vec::with_capacity(shape.crs() as usize);
    for c in 0..shape.c {
        for r in 0..shape.r {
            for s in 0..shape.s {
                let d = ((c * shape.h + r) * shape.w + s) * shape.n;
                lut.push(d as i32);
            }
        }
    }
    lut
}

fn data_ty(dtype: DType) -> Ty {
    match dtype {
        DType::F16 => Ty::F16,
        DType::F32 => Ty::F32,
        DType::F64 => Ty::F64,
    }
}

fn acc_ty(dtype: DType) -> Ty {
    match dtype {
        DType::F16 | DType::F32 => Ty::F32,
        DType::F64 => Ty::F64,
    }
}

fn log2_size(ty: Ty) -> i64 {
    match ty.size_bytes() {
        2 => 1,
        4 => 2,
        8 => 3,
        other => panic!("unexpected element size {other}"),
    }
}

fn frag_width(x: u32) -> u8 {
    if x.is_multiple_of(4) {
        4
    } else if x.is_multiple_of(2) {
        2
    } else {
        1
    }
}

/// Build the IR kernel for a convolution.
pub fn build_kernel(cfg: &GemmConfig, shape: &ConvShape) -> BuiltConv {
    let g = equivalent_gemm(shape);
    let dty = data_ty(shape.dtype);
    let aty = acc_ty(shape.dtype);
    let dsh = log2_size(dty);
    let ash = log2_size(aty);
    let (ms, ns) = (cfg.ms as usize, cfg.ns as usize);
    let (ml, nl) = (cfg.ml as i64, cfg.nl as i64);
    let u = cfg.u as usize;
    let uk = cfg.uk() as i64;
    let vec = cfg.vec as u8;
    let threads = cfg.threads();
    let (tm, tn) = (cfg.tm() as i64, cfg.tn() as i64);
    let kchunk = cfg.kchunk(&g);
    let big_n = shape.n as i64;
    let big_q = shape.q() as i64;
    let big_w = shape.w as i64;
    let npq = shape.npq() as i64;

    let mut b = KernelBuilder::new(format!("{}_{}", shape.name(), cfg.name(&g)));
    let p_f = b.param_ptr("F", dty);
    let p_i = b.param_ptr("I", dty);
    let p_o = b.param_ptr("O", dty);
    let p_lut = b.param_ptr("lut", Ty::S32);
    let p_kf = b.param_s32("Kf"); // M' = filter count
    let p_npq = b.param_s32("NPQ"); // N'
    let p_crs = b.param_s32("CRS"); // K'
    let p_kchunk = b.param_s32("kchunk");

    let sm_a = b.shared_array("smF", dty, (ml * uk) as usize);
    let sm_b = b.shared_array("smI", dty, (nl * uk) as usize);
    let sm_r = if cfg.kl > 1 {
        Some(b.shared_array("smR", aty, (ml * nl) as usize))
    } else {
        None
    };

    // ---- prologue -------------------------------------------------------
    let f_ptr = b.ld_param(p_f);
    let i_ptr = b.ld_param(p_i);
    let o_ptr = b.ld_param(p_o);
    let lut_ptr = b.ld_param(p_lut);
    let m = b.ld_param(p_kf);
    let n = b.ld_param(p_npq);
    let k = b.ld_param(p_crs);
    let kchunk_r = b.ld_param(p_kchunk);

    let tid = b.sreg(Sreg::TidX);
    let bm = b.sreg(Sreg::CtaIdX);
    let bn = b.sreg(Sreg::CtaIdY);
    let bk = b.sreg(Sreg::CtaIdZ);

    let tidm = b.bin_new(BinOp::Rem, Ty::S32, tid, tm);
    let tmp = b.bin_new(BinOp::Div, Ty::S32, tid, tm);
    let tidn = b.bin_new(BinOp::Rem, Ty::S32, tmp, tn);
    let tidk = b.bin_new(BinOp::Div, Ty::S32, tmp, tn);

    let k0 = b.mul(bk, kchunk_r);
    let k0_end = b.add(k0, kchunk_r);
    let k1 = b.bin_new(BinOp::Min, Ty::S32, k0_end, k);

    // Filter loads: contiguous along M' (the filter index), stride K per
    // crs step -- identical to a non-transposed GEMM A panel with lda = M'.
    let step_f: Operand = {
        let e = b.mul(m, uk);
        let by = b.bin_new(BinOp::Shl, Ty::S32, e, dsh);
        let by64 = b.cvt(Ty::U64, by);
        Operand::Reg(by64)
    };

    struct FilterLoad {
        addr: RegId,
        k_idx: RegId,
        smem_off: RegId,
        span_ok: RegId,
    }
    let stride = (threads * cfg.vec) as i64;
    let mut f_loads = Vec::new();
    for l in 0..cfg.loads_a() as i64 {
        let f = b.mad_s32(tid, vec as i64, l * stride);
        let i = b.bin_new(BinOp::Rem, Ty::S32, f, ml);
        let kk = b.bin_new(BinOp::Div, Ty::S32, f, ml);
        let row = b.mad_s32(bm, ml, i);
        let span_ok = b.setp_new(CmpOp::Lt, row, m);
        let k_idx = b.add(k0, kk);
        let elem = b.mad_s32(k_idx, m, row);
        let byte = b.bin_new(BinOp::Shl, Ty::S32, elem, dsh);
        let byte64 = b.cvt(Ty::U64, byte);
        let addr = b.bin_new(BinOp::Add, Ty::U64, f_ptr, byte64);
        let sm_elem = b.mad_s32(kk, ml, i);
        let smem_off = b.bin_new(BinOp::Shl, Ty::S32, sm_elem, dsh);
        f_loads.push(FilterLoad {
            addr,
            k_idx,
            smem_off,
            span_ok,
        });
    }

    // Patch loads: per load, the pixel offset e(j) is precomputed here
    // (div/mod chains); the inner loop adds the table entry d(kk).
    struct PatchLoad {
        /// u64 base: I + e(j) bytes (loop-invariant).
        base: RegId,
        /// u64 address of lut[kk] (bumped by UK*4 per iteration).
        lut_addr: RegId,
        /// Current k' index.
        k_idx: RegId,
        /// Shared store byte offset.
        smem_off: RegId,
        /// j < NPQ.
        span_ok: RegId,
    }
    let mut i_loads = Vec::new();
    for l in 0..cfg.loads_b() as i64 {
        let f = b.mad_s32(tid, vec as i64, l * stride);
        let j_local = b.bin_new(BinOp::Rem, Ty::S32, f, nl);
        let kk = b.bin_new(BinOp::Div, Ty::S32, f, nl);
        let j = b.mad_s32(bn, nl, j_local);
        let span_ok = b.setp_new(CmpOp::Lt, j, n);
        // Clamp j for address computation: predicated-off lanes must still
        // produce an in-bounds e(j).
        let nmax = b.add(n, -1);
        let j_c = b.bin_new(BinOp::Min, Ty::S32, j, nmax);
        // Decompose j = ((p*Q) + q)*N + n_img.
        let n_img = b.bin_new(BinOp::Rem, Ty::S32, j_c, big_n);
        let pq = b.bin_new(BinOp::Div, Ty::S32, j_c, big_n);
        let q = b.bin_new(BinOp::Rem, Ty::S32, pq, big_q);
        let p = b.bin_new(BinOp::Div, Ty::S32, pq, big_q);
        // e(j) = (p*W + q)*N + n_img.
        let pw = b.mul(p, big_w);
        let pwq = b.bin_new(BinOp::Add, Ty::S32, pw, q);
        let e = b.mad_s32(pwq, big_n, n_img);
        let e_by = b.bin_new(BinOp::Shl, Ty::S32, e, dsh);
        let e64 = b.cvt(Ty::U64, e_by);
        let base = b.bin_new(BinOp::Add, Ty::U64, i_ptr, e64);
        let k_idx = b.add(k0, kk);
        // lut address: lut + k_idx*4.
        let l_by = b.bin_new(BinOp::Shl, Ty::S32, k_idx, 2);
        let l64 = b.cvt(Ty::U64, l_by);
        let lut_addr = b.bin_new(BinOp::Add, Ty::U64, lut_ptr, l64);
        let sm_elem = b.mad_s32(kk, nl, j_local);
        let smem_off = b.bin_new(BinOp::Shl, Ty::S32, sm_elem, dsh);
        i_loads.push(PatchLoad {
            base,
            lut_addr,
            k_idx,
            smem_off,
            span_ok,
        });
    }

    // ---- fragment bases and accumulators --------------------------------
    let t1 = b.mul(tidk, u as i64 * ml);
    let t2 = b.mad_s32(tidm, ms as i64, t1);
    let a_frag_base = b.bin_new(BinOp::Shl, Ty::S32, t2, dsh);
    let t3 = b.mul(tidk, u as i64 * nl);
    let t4 = b.mad_s32(tidn, ns as i64, t3);
    let b_frag_base = b.bin_new(BinOp::Shl, Ty::S32, t4, dsh);

    let acc: Vec<RegId> = (0..cfg.ks as usize * ms * ns).map(|_| b.reg(aty)).collect();
    for &r in &acc {
        b.mov(r, 0.0);
    }
    let a_frag = b.reg_vec(aty, ms);
    let b_frag = b.reg_vec(aty, ns);

    // ---- main loop -------------------------------------------------------
    let va = frag_width(cfg.ms);
    let vb = frag_width(cfg.ns);
    b.for_loop(k0, k1, uk, |b, _kb| {
        for load in &f_loads {
            let in_k = b.setp_new(CmpOp::Lt, load.k_idx, k1);
            let guard = b.pred_and(in_k, load.span_ok);
            let stage = b.reg_vec(dty, vec as usize);
            b.ld_global(stage[0], vec, load.addr, 0, Some(guard));
            b.st_shared(stage[0], vec, sm_a, load.smem_off, 0, None);
            b.bin(BinOp::Add, load.addr, load.addr, step_f);
            b.bin(BinOp::Add, load.k_idx, load.k_idx, uk);
        }
        for load in &i_loads {
            let in_k = b.setp_new(CmpOp::Lt, load.k_idx, k1);
            let guard = b.pred_and(in_k, load.span_ok);
            // One table lookup per slice: d = lut[kk].
            let d = b.reg(Ty::S32);
            b.ld_global(d, 1, load.lut_addr, 0, Some(in_k));
            let d_by = b.bin_new(BinOp::Shl, Ty::S32, d, dsh);
            let d64 = b.cvt(Ty::U64, d_by);
            let addr = b.bin_new(BinOp::Add, Ty::U64, load.base, d64);
            let stage = b.reg_vec(dty, vec as usize);
            b.ld_global(stage[0], vec, addr, 0, Some(guard));
            b.st_shared(stage[0], vec, sm_b, load.smem_off, 0, None);
            b.bin(BinOp::Add, load.lut_addr, load.lut_addr, uk * 4);
            b.bin(BinOp::Add, load.k_idx, load.k_idx, uk);
        }
        b.barrier();
        for kk in 0..u {
            for iv in 0..ms / va as usize {
                b.ld_shared(
                    a_frag[iv * va as usize],
                    va,
                    sm_a,
                    a_frag_base,
                    ((kk as i64 * ml) + (iv as i64 * va as i64)) << dsh,
                );
            }
            for jv in 0..ns / vb as usize {
                b.ld_shared(
                    b_frag[jv * vb as usize],
                    vb,
                    sm_b,
                    b_frag_base,
                    ((kk as i64 * nl) + (jv as i64 * vb as i64)) << dsh,
                );
            }
            let set = kk % cfg.ks as usize;
            for i in 0..ms {
                for j in 0..ns {
                    let dst = acc[set * ms * ns + i * ns + j];
                    b.fma(dst, a_frag[i], b_frag[j]);
                }
            }
        }
        b.barrier();
    });

    // ---- Ks fold ---------------------------------------------------------
    for set in 1..cfg.ks as usize {
        for e in 0..ms * ns {
            let dst = acc[e];
            let src = acc[set * ms * ns + e];
            b.bin(BinOp::Add, dst, dst, src);
        }
    }

    // ---- KL reduction -----------------------------------------------------
    let p_group0 = if cfg.kl > 1 {
        let sm_r = sm_r.expect("smR allocated when KL > 1");
        let t = b.mul(tidn, ns as i64 * ml);
        let t2 = b.mad_s32(tidm, ms as i64, t);
        let red_base = b.bin_new(BinOp::Shl, Ty::S32, t2, ash);
        let p0 = b.setp_new(CmpOp::Eq, tidk, 0);
        for i in 0..ms {
            for j in 0..ns {
                let off = ((j as i64 * ml) + i as i64) << ash;
                b.st_shared(acc[i * ns + j], 1, sm_r, red_base, off, Some(p0));
            }
        }
        b.barrier();
        let tmp = b.reg(aty);
        for gr in 1..cfg.kl as i64 {
            let pg = b.setp_new(CmpOp::Eq, tidk, gr);
            for i in 0..ms {
                for j in 0..ns {
                    let off = ((j as i64 * ml) + i as i64) << ash;
                    b.ld_shared(tmp, 1, sm_r, red_base, off);
                    b.bin(BinOp::Add, tmp, tmp, acc[i * ns + j]);
                    b.st_shared(tmp, 1, sm_r, red_base, off, Some(pg));
                }
            }
            b.barrier();
        }
        for i in 0..ms {
            for j in 0..ns {
                let off = ((j as i64 * ml) + i as i64) << ash;
                b.ld_shared(acc[i * ns + j], 1, sm_r, red_base, off);
            }
        }
        Some(p0)
    } else {
        None
    };

    // ---- write-out: O[row * NPQ + col] (row-major) ------------------------
    let t = b.mul(tidm, ms as i64);
    let row_base = b.mad_s32(bm, ml, t);
    let t = b.mul(tidn, ns as i64);
    let col_base = b.mad_s32(bn, nl, t);
    let col_ok: Vec<RegId> = (0..ns)
        .map(|j| {
            let c = b.add(col_base, j as i64);
            b.setp_new(CmpOp::Lt, c, n)
        })
        .collect();
    for i in 0..ms {
        let row = b.add(row_base, i as i64);
        let row_okp = b.setp_new(CmpOp::Lt, row, m);
        let row_guard = match p_group0 {
            Some(p0) => b.pred_and(row_okp, p0),
            None => row_okp,
        };
        let elem = b.mad_s32(row, npq, col_base);
        let byte = b.bin_new(BinOp::Shl, Ty::S32, elem, dsh);
        let byte64 = b.cvt(Ty::U64, byte);
        let addr = b.bin_new(BinOp::Add, Ty::U64, o_ptr, byte64);
        for (j, &cp) in col_ok.iter().enumerate() {
            let guard = b.pred_and(row_guard, cp);
            let val = acc[i * ns + j];
            let off = (j as i64) << dsh;
            if cfg.kg > 1 {
                b.atom_add_global(val, addr, off, Some(guard));
            } else {
                b.st_global(val, 1, addr, off, Some(guard));
            }
        }
    }

    BuiltConv {
        kernel: b.finish(),
        grid: cfg.grid(&g),
        threads,
        kchunk,
        lut: indirection_table(shape),
    }
}

/// Run a convolution on the VM (f32 or f16 storage as f32 slices).
pub fn run_f32(
    cfg: &GemmConfig,
    shape: &ConvShape,
    input: &[f32],
    filters: &[f32],
) -> Result<(Vec<f32>, LaunchStats), GpuFault> {
    assert_ne!(shape.dtype, DType::F64, "f64 convolutions not benchmarked");
    let built = build_kernel(cfg, shape);
    let mut mem = GpuMemory::new();
    let (bf, bi, bo) = if shape.dtype == DType::F16 {
        (
            mem.alloc_f16(filters),
            mem.alloc_f16(input),
            mem.alloc_f16_zeroed(shape.o_len()),
        )
    } else {
        (
            mem.alloc_f32(filters),
            mem.alloc_f32(input),
            mem.alloc_f32_zeroed(shape.o_len()),
        )
    };
    let blut = mem.alloc_i32(&built.lut);
    let stats = Vm::new().launch(
        &built.kernel,
        built.grid,
        built.threads,
        &[
            Arg::Buf(bf),
            Arg::Buf(bi),
            Arg::Buf(bo),
            Arg::Buf(blut),
            Arg::I32(shape.k as i32),
            Arg::I32(shape.npq() as i32),
            Arg::I32(shape.crs() as i32),
            Arg::I32(built.kchunk as i32),
        ],
        &mut mem,
    )?;
    Ok((mem.read_f32(bo), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use isaac_device::specs::tesla_p100;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check_conv(cfg: &GemmConfig, shape: &ConvShape) {
        check(cfg, shape, &tesla_p100()).unwrap_or_else(|e| panic!("illegal config: {e}"));
        let input = rand_vec(shape.i_len(), 11);
        let filters = rand_vec(shape.f_len(), 12);
        let (got, _) = run_f32(cfg, shape, &input, &filters).expect("VM run");
        let mut want = vec![0.0f32; shape.o_len()];
        reference::conv_f32(shape, &input, &filters, &mut want);
        let tol = 1e-4 * (shape.crs() as f32).sqrt();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= tol + 1e-5,
                "mismatch at {i}: got {g}, want {w} (cfg {cfg:?}, shape {shape:?})"
            );
        }
    }

    fn small_cfg() -> GemmConfig {
        GemmConfig {
            ml: 16,
            nl: 16,
            ms: 2,
            ns: 2,
            u: 8,
            vec: 1,
            ..Default::default()
        }
    }

    #[test]
    fn lut_matches_direct_formula() {
        let shape = ConvShape::from_output(2, 3, 4, 5, 3, 2, 2, isaac_device::DType::F32);
        let lut = indirection_table(&shape);
        assert_eq!(lut.len(), shape.crs() as usize);
        // kk = (c*R + r)*S + s with c=1, r=1, s=0 -> index (1*2+1)*2+0 = 6.
        let d = (shape.h + 1) * shape.w * shape.n;
        assert_eq!(lut[6], d as i32);
    }

    #[test]
    fn conv_1x1_matches_reference() {
        let shape = ConvShape::from_output(4, 4, 4, 16, 16, 1, 1, isaac_device::DType::F32);
        check_conv(&small_cfg(), &shape);
    }

    #[test]
    fn conv_3x3_matches_reference() {
        let shape = ConvShape::from_output(2, 5, 6, 18, 4, 3, 3, isaac_device::DType::F32);
        check_conv(&small_cfg(), &shape);
    }

    #[test]
    fn conv_rectangular_filters() {
        // DeepSpeech-like: very wide filter, single channel.
        let shape = ConvShape::from_output(2, 4, 9, 16, 1, 2, 6, isaac_device::DType::F32);
        check_conv(&small_cfg(), &shape);
    }

    #[test]
    fn conv_with_grid_split_kg() {
        let cfg = GemmConfig {
            kg: 4,
            ..small_cfg()
        };
        // Deep reduction: C=32, R=S=2 -> CRS=128.
        let shape = ConvShape::from_output(2, 3, 3, 16, 32, 2, 2, isaac_device::DType::F32);
        check_conv(&cfg, &shape);
    }

    #[test]
    fn conv_with_block_split_kl() {
        let cfg = GemmConfig {
            kl: 2,
            u: 4,
            ..small_cfg()
        };
        let shape = ConvShape::from_output(2, 3, 3, 16, 16, 3, 3, isaac_device::DType::F32);
        check_conv(&cfg, &shape);
    }

    #[test]
    fn conv_vectorized_batch_loads() {
        let cfg = GemmConfig {
            ml: 16,
            nl: 32,
            ms: 2,
            ns: 4,
            u: 16,
            vec: 4,
            ..Default::default()
        };
        // N = 4 divisible by vec.
        let shape = ConvShape::from_output(4, 3, 4, 16, 8, 2, 2, isaac_device::DType::F32);
        check_conv(&cfg, &shape);
    }

    #[test]
    fn conv_f16_quantized() {
        let shape = ConvShape::from_output(2, 3, 3, 16, 8, 2, 2, isaac_device::DType::F16);
        let cfg = small_cfg();
        check(&cfg, &shape, &tesla_p100()).unwrap();
        let input = rand_vec(shape.i_len(), 21);
        let filters = rand_vec(shape.f_len(), 22);
        let (got, _) = run_f32(&cfg, &shape, &input, &filters).unwrap();
        let mut want = vec![0.0f32; shape.o_len()];
        reference::conv_f16(&shape, &input, &filters, &mut want);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 2e-2, "got {g}, want {w}");
        }
    }

    #[test]
    fn vec_crossing_batch_boundary_is_illegal() {
        let cfg = GemmConfig {
            ml: 16,
            nl: 32,
            ms: 2,
            ns: 4,
            u: 16,
            vec: 4,
            ..Default::default()
        };
        // N = 2 not divisible by vec = 4.
        let shape = ConvShape::from_output(2, 4, 4, 16, 8, 2, 2, isaac_device::DType::F32);
        assert_eq!(
            check(&cfg, &shape, &tesla_p100()),
            Err(ConfigIssue::Vectorization)
        );
    }

    #[test]
    fn emitted_conv_ptx_validates() {
        let shape = ConvShape::from_output(4, 4, 4, 32, 16, 3, 3, isaac_device::DType::F32);
        let built = build_kernel(&small_cfg(), &shape);
        let ptx = isaac_ir::emit_ptx(&built.kernel, "sm_60");
        let module = isaac_ir::ptx::parse_module(&ptx).expect("parses");
        module.validate().expect("validates");
    }

    #[test]
    fn conv_stats_include_lut_traffic() {
        let shape = ConvShape::from_output(4, 4, 4, 16, 16, 3, 3, isaac_device::DType::F32);
        let cfg = small_cfg();
        let input = rand_vec(shape.i_len(), 31);
        let filters = rand_vec(shape.f_len(), 32);
        let (_, stats) = run_f32(&cfg, &shape, &input, &filters).unwrap();
        let per = stats.per_thread();
        // Patch loads come with one extra (LUT) global load each, so ldg
        // must exceed the two tile streams alone.
        assert!(per.ldg > 0.0 && per.math > 0.0);
    }
}
