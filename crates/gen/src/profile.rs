//! Analytical kernel profiles: instruction mix, resources and memory
//! traffic, derived in closed form from the tuning configuration.
//!
//! These are the `x -> features` half of the paper's pipeline: every
//! quantity here is a deterministic function of (input, tuning) parameters,
//! mirroring what static analysis of the generated PTX would produce. A
//! cross-check test validates the analytic counts against the VM's dynamic
//! statistics.

use crate::config::{BoundsMode, GemmConfig};
use crate::conv::equivalent_gemm;
use crate::legality::{self, ConfigIssue};
use crate::shapes::{ConvShape, GemmShape};
use isaac_device::{
    occupancy, DType, DeviceSpec, InstrMix, KernelProfile, Launch, MemoryFootprint,
};

fn frag_width(x: u32) -> u32 {
    if x.is_multiple_of(4) {
        4
    } else if x.is_multiple_of(2) {
        2
    } else {
        1
    }
}

/// Shared-memory bytes actually allocated by the generated kernels: the A
/// and B tiles in data precision plus, when KL > 1, the reduction buffer in
/// accumulator precision.
pub fn smem_bytes(cfg: &GemmConfig, dtype: DType) -> u32 {
    let ds = dtype.size_bytes() as u32;
    let acc = match dtype {
        DType::F16 | DType::F32 => 4,
        DType::F64 => 8,
    };
    let tiles = (cfg.ml + cfg.nl) * cfg.uk() * ds;
    let red = if cfg.kl > 1 { cfg.ml * cfg.nl * acc } else { 0 };
    tiles + red
}

/// What kind of kernel a profile describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Gemm { trans_a: bool, trans_b: bool },
    Conv,
}

/// Analytical profile of a GEMM kernel.
pub fn gemm_profile(
    cfg: &GemmConfig,
    shape: &GemmShape,
    spec: &DeviceSpec,
) -> Result<KernelProfile, ConfigIssue> {
    legality::check(cfg, shape, spec)?;
    Ok(build(
        cfg,
        shape,
        spec,
        Kind::Gemm {
            trans_a: shape.trans_a,
            trans_b: shape.trans_b,
        },
        cfg.name(shape),
        (shape.a_len() + shape.b_len()) as f64 * shape.dtype.size_bytes() as f64,
    ))
}

/// Analytical profile of a convolution kernel (implicit GEMM view).
pub fn conv_profile(
    cfg: &GemmConfig,
    shape: &ConvShape,
    spec: &DeviceSpec,
) -> Result<KernelProfile, ConfigIssue> {
    crate::conv::check(cfg, shape, spec)?;
    let g = equivalent_gemm(shape);
    let unique = (shape.i_len() + shape.f_len()) as f64 * shape.dtype.size_bytes() as f64
        + shape.crs() as f64 * 4.0;
    Ok(build(
        cfg,
        &g,
        spec,
        Kind::Conv,
        format!("{}_{}", shape.name(), cfg.name(&g)),
        unique,
    ))
}

fn build(
    cfg: &GemmConfig,
    g: &GemmShape,
    spec: &DeviceSpec,
    kind: Kind,
    name: String,
    unique_read_bytes: f64,
) -> KernelProfile {
    let ds = g.dtype.size_bytes() as f64;
    let threads = cfg.threads();
    let uk = cfg.uk() as f64;
    let kchunk = cfg.kchunk(g) as f64;
    let iters = (kchunk / uk).ceil().max(1.0);
    let na = cfg.loads_a() as f64;
    let nb = cfg.loads_b() as f64;
    let (ms, ns, u) = (cfg.ms as f64, cfg.ns as f64, cfg.u as f64);
    let va = frag_width(cfg.ms) as f64;
    let vb = frag_width(cfg.ns) as f64;
    let vec = cfg.vec as f64;

    // fp16x2 packing: two MACs per instruction along the NS axis.
    let packed = g.dtype == DType::F16 && cfg.ns.is_multiple_of(2);
    let (math_per_iter, flops_per_math) = if packed {
        (u * ms * ns / 2.0, 4.0)
    } else {
        (u * ms * ns, 2.0)
    };

    // Shared-store decomposition: a load whose global vector is orthogonal
    // to the tile's contiguous axis stores `vec` scalars (the in-place
    // transposition of Section 3.2).
    let (cont_a, cont_b) = match kind {
        Kind::Gemm { trans_a, trans_b } => (!trans_a, trans_b),
        Kind::Conv => (true, true),
    };
    let sts_per_iter = na * if cont_a { 1.0 } else { vec } + nb * if cont_b { 1.0 } else { vec };
    let lds_per_iter = u * (ms / va + ns / vb);
    let lut_ldg = match kind {
        Kind::Conv => nb,
        _ => 0.0,
    };
    let ldg_per_iter = na + nb + lut_ldg;
    // Per load: setp + and + address bump + k bump, plus the emitter's
    // zero-fill moves ahead of each guarded load; conv patch loads add the
    // shl/cvt/add around the table lookup.
    let mut misc_per_iter = (na + nb) * (4.0 + vec)
        + match kind {
            Kind::Conv => nb * 4.0,
            _ => 0.0,
        }
        + 2.0; // loop counter + compare/branch
    match cfg.bounds {
        BoundsMode::PtxPredicated => {}
        // Explicit compare/branch guards around every memory access, the
        // unrolled fragment loads included: the CUDA-C backend cost.
        BoundsMode::CudaStyle => misc_per_iter += 3.0 * (lds_per_iter + na + nb),
        // Padding removes per-load predication (setp+and) entirely.
        BoundsMode::Padded => misc_per_iter -= 2.0 * (na + nb),
    }

    // Epilogue.
    let msns = ms * ns;
    let ks_fold_math = (cfg.ks as f64 - 1.0) * msns;
    let (kl_lds, kl_sts, kl_math, kl_barriers) = if cfg.kl > 1 {
        let kl = cfg.kl as f64;
        (msns * kl, msns * kl, msns * (kl - 1.0), kl)
    } else {
        (0.0, 0.0, 0.0, 0.0)
    };
    let writeout_misc = ns * 6.0 + ms + msns;
    let writeout_mem = msns;

    let prologue_misc = 30.0
        + 10.0 * (na + nb)
        + match kind {
            Kind::Conv => 8.0 * nb,
            _ => 0.0,
        };

    let instr = InstrMix {
        math: math_per_iter * iters + ks_fold_math + kl_math,
        flops_per_math,
        ldg: ldg_per_iter * iters,
        ldg_bytes: vec * ds,
        stg: if cfg.kg > 1 { 0.0 } else { writeout_mem },
        stg_bytes: ds,
        lds: lds_per_iter * iters + kl_lds,
        sts: sts_per_iter * iters + kl_sts,
        atom: if cfg.kg > 1 { writeout_mem } else { 0.0 },
        misc: misc_per_iter * iters + prologue_misc + writeout_misc,
        barriers: 2.0 * iters + kl_barriers,
    };

    // ---- memory traffic -------------------------------------------------
    let grid = cfg.grid(g);
    let blocks_xy = grid[0] as f64 * grid[1] as f64;
    let (ml, nl) = (cfg.ml as f64, cfg.nl as f64);
    let mut read_bytes = blocks_xy * cfg.kg as f64 * (ml + nl) * (iters * uk) * ds + lut_ldg * 0.0;
    if matches!(kind, Kind::Conv) {
        // Table traffic: 4 bytes per slice entry per block column.
        read_bytes += blocks_xy * cfg.kg as f64 * (iters * uk) * 4.0;
    }
    let c_bytes = g.m as f64 * g.n as f64 * ds;
    let mut write_bytes = c_bytes;
    let mut atomic_bytes = 0.0;
    if cfg.kg > 1 {
        // Zero-initialization pass plus KG atomic accumulations.
        write_bytes += c_bytes;
        atomic_bytes = c_bytes * cfg.kg as f64;
    }
    let mut unique = unique_read_bytes;
    if cfg.bounds == BoundsMode::Padded {
        // Host-side padded copies: read+write both operands, and the
        // padded output is copied back.
        let a_pad = grid[0] as f64 * ml * g.k as f64 * ds;
        let b_pad = grid[1] as f64 * nl * g.k as f64 * ds;
        let c_pad = grid[0] as f64 * ml * grid[1] as f64 * nl * ds;
        read_bytes += a_pad + b_pad + c_pad;
        write_bytes += a_pad + b_pad + c_pad;
        unique += a_pad + b_pad;
    }

    // ---- wave-level reuse -------------------------------------------------
    let regs = legality::estimate_regs(cfg, g.dtype);
    let smem = smem_bytes(cfg, g.dtype);
    let launch = Launch {
        grid,
        block_threads: threads,
    };
    let mut profile = KernelProfile {
        name,
        launch,
        regs_per_thread: regs,
        smem_per_block: smem,
        instr,
        mem: MemoryFootprint::default(),
        ilp: ms * ns * cfg.ks as f64,
        mlp: na + nb + lut_ldg,
        dtype: g.dtype,
        useful_flops: g.flops(),
        misc_discount: 1.0,
    };
    let occ = occupancy::occupancy(spec, &profile);
    let resident = (spec.sm_count as f64 * occ.blocks_per_sm as f64)
        .min(launch.blocks() as f64)
        .max(1.0);
    let gm = grid[0] as f64;
    let distinct_a = resident.min(gm);
    let distinct_b = (resident / gm).ceil().min(grid[1] as f64).max(1.0);
    let reuse_a = (1.0 - distinct_a / resident).max(0.0);
    let reuse_b = (1.0 - distinct_b / resident).max(0.0);
    let fa = ml / (ml + nl);
    // Deeper prefetch widens the window in which co-resident blocks touch
    // the same panel slice before it is evicted (Section 8.1).
    let drift = u / (u + 4.0);
    profile.mem = MemoryFootprint {
        read_bytes,
        unique_read_bytes: unique,
        write_bytes,
        atomic_bytes,
        wave_reuse_fraction: (fa * reuse_a + (1.0 - fa) * reuse_b) * drift,
        wave_working_set: (distinct_a * ml + distinct_b * nl) * uk * ds * 4.0,
    };
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conv, gemm};
    use isaac_device::simulate;
    use isaac_device::specs::{gtx980ti, tesla_p100};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    /// The analytic instruction mix must agree with the VM's dynamic
    /// counts within a modest tolerance (the analytic side also charges
    /// emitter-expanded zero-fill moves that the VM folds into loads).
    #[test]
    fn analytic_mix_matches_vm_stats_gemm() {
        let cases = [
            (
                GemmConfig {
                    ml: 32,
                    nl: 32,
                    ms: 4,
                    ns: 4,
                    u: 8,
                    vec: 4,
                    ..Default::default()
                },
                GemmShape::new(64, 64, 64, "N", "T", DType::F32),
            ),
            (
                GemmConfig {
                    ml: 16,
                    nl: 16,
                    ms: 2,
                    ns: 2,
                    u: 4,
                    kl: 2,
                    kg: 2,
                    vec: 1,
                    ..Default::default()
                },
                GemmShape::new(32, 32, 64, "T", "N", DType::F32),
            ),
        ];
        for (cfg, shape) in cases {
            let p = gemm_profile(&cfg, &shape, &tesla_p100()).expect("legal");
            let a = rand_vec(shape.a_len(), 1);
            let b = rand_vec(shape.b_len(), 2);
            let (_, stats) = gemm::run_f32(&cfg, &shape, &a, &b).unwrap();
            let per = stats.per_thread();
            let close = |got: f64, want: f64, what: &str, tol: f64| {
                let rel = (got - want).abs() / want.max(1.0);
                assert!(rel < tol, "{what}: analytic {want}, vm {got} (cfg {cfg:?})");
            };
            close(per.math, p.instr.math, "math", 0.15);
            close(per.ldg, p.instr.ldg, "ldg", 0.15);
            close(per.lds, p.instr.lds, "lds", 0.15);
            close(per.sts, p.instr.sts, "sts", 0.15);
            close(per.barriers, p.instr.barriers, "barriers", 0.15);
            close(per.misc, p.instr.misc, "misc", 0.6);
        }
    }

    #[test]
    fn analytic_mix_matches_vm_stats_conv() {
        let cfg = GemmConfig {
            ml: 16,
            nl: 16,
            ms: 2,
            ns: 2,
            u: 8,
            vec: 1,
            ..Default::default()
        };
        let shape = ConvShape::from_output(4, 4, 4, 16, 16, 3, 3, DType::F32);
        let p = conv_profile(&cfg, &shape, &tesla_p100()).expect("legal");
        let input = rand_vec(shape.i_len(), 3);
        let filters = rand_vec(shape.f_len(), 4);
        let (_, stats) = conv::run_f32(&cfg, &shape, &input, &filters).unwrap();
        let per = stats.per_thread();
        let rel = |got: f64, want: f64| (got - want).abs() / want.max(1.0);
        assert!(
            rel(per.math, p.instr.math) < 0.15,
            "math {} vs {}",
            per.math,
            p.instr.math
        );
        assert!(
            rel(per.ldg, p.instr.ldg) < 0.15,
            "ldg {} vs {}",
            per.ldg,
            p.instr.ldg
        );
        assert!(
            rel(per.sts, p.instr.sts) < 0.15,
            "sts {} vs {}",
            per.sts,
            p.instr.sts
        );
    }

    #[test]
    fn profiles_simulate_on_both_devices() {
        let cfg = GemmConfig::default();
        let shape = GemmShape::new(2048, 2048, 2048, "N", "T", DType::F32);
        for spec in [gtx980ti(), tesla_p100()] {
            let p = gemm_profile(&cfg, &shape, &spec).expect("legal");
            let r = simulate(&spec, &p).expect("simulates");
            let eff = r.tflops * 1e12 / spec.peak_flops(DType::F32);
            assert!(
                (0.5..=1.0).contains(&eff),
                "well-tuned square SGEMM should be efficient on {}: {eff}",
                spec.name
            );
        }
    }

    #[test]
    fn skinny_n_wastes_flops_with_wide_tiles() {
        // The Section 8.1 effect: NL = 64 on an N = 16 problem pads 4x.
        let spec = tesla_p100();
        let shape = GemmShape::new(2560, 16, 2560, "N", "N", DType::F32);
        let wide = GemmConfig {
            ml: 128,
            nl: 64,
            ms: 8,
            ns: 8,
            u: 8,
            vec: 4,
            ..Default::default()
        };
        let narrow = GemmConfig {
            ml: 64,
            nl: 16,
            ms: 4,
            ns: 2,
            u: 16,
            kg: 4,
            vec: 2,
            ..Default::default()
        };
        let pw = gemm_profile(&wide, &shape, &spec).unwrap();
        let pn = gemm_profile(&narrow, &shape, &spec).unwrap();
        let rw = simulate(&spec, &pw).unwrap();
        let rn = simulate(&spec, &pn).unwrap();
        assert!(
            rn.tflops > rw.tflops * 1.2,
            "narrow tiles + split-K should win on skinny N: {} vs {}",
            rn.tflops,
            rw.tflops
        );
    }

    #[test]
    fn deep_k_needs_global_split() {
        // ICA: 32x32x60000. Without KG only one block exists.
        let spec = tesla_p100();
        let shape = GemmShape::new(32, 32, 60000, "N", "T", DType::F32);
        let no_split = GemmConfig {
            ml: 32,
            nl: 32,
            ms: 2,
            ns: 2,
            u: 8,
            kl: 2,
            vec: 1,
            ..Default::default()
        };
        let split = GemmConfig { kg: 32, ..no_split };
        let r0 = simulate(&spec, &gemm_profile(&no_split, &shape, &spec).unwrap()).unwrap();
        let r1 = simulate(&spec, &gemm_profile(&split, &shape, &spec).unwrap()).unwrap();
        assert!(
            r1.tflops > 5.0 * r0.tflops,
            "global split-K should give order-of-magnitude gains on deep K: {} vs {}",
            r1.tflops,
            r0.tflops
        );
    }

    #[test]
    fn cuda_style_bounds_cost_double_digits() {
        let spec = tesla_p100();
        let shape = GemmShape::new(2048, 2048, 2048, "N", "T", DType::F32);
        let pred = GemmConfig::default();
        let cuda = GemmConfig {
            bounds: BoundsMode::CudaStyle,
            ..pred
        };
        let rp = simulate(&spec, &gemm_profile(&pred, &shape, &spec).unwrap()).unwrap();
        let rc = simulate(&spec, &gemm_profile(&cuda, &shape, &spec).unwrap()).unwrap();
        let loss = 1.0 - rc.tflops / rp.tflops;
        assert!(
            (0.08..=0.3).contains(&loss),
            "CUDA-style bounds checks should cost 10-25%, got {loss}"
        );
    }

    #[test]
    fn fp16_packed_math_counts_half_instructions() {
        let cfg = GemmConfig::default();
        let f32s = GemmShape::new(1024, 1024, 1024, "N", "T", DType::F32);
        let f16s = GemmShape::new(1024, 1024, 1024, "N", "T", DType::F16);
        let spec = tesla_p100();
        let p32 = gemm_profile(&cfg, &f32s, &spec).unwrap();
        let p16 = gemm_profile(&cfg, &f16s, &spec).unwrap();
        assert!((p16.instr.math - p32.instr.math / 2.0).abs() / p32.instr.math < 0.05);
        assert_eq!(p16.instr.flops_per_math, 4.0);
    }

    #[test]
    fn illegal_config_is_rejected() {
        let cfg = GemmConfig {
            ms: 3,
            ..Default::default()
        };
        let shape = GemmShape::new(64, 64, 64, "N", "N", DType::F32);
        assert!(gemm_profile(&cfg, &shape, &tesla_p100()).is_err());
    }
}
