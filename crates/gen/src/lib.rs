//! Parameterized GEMM and CONV kernel generators (paper Section 3).
//!
//! This crate lowers a tuning configuration plus an input description to:
//!
//! 1. an executable IR kernel ([`gemm::build_kernel`],
//!    [`conv::build_kernel`]) that runs on the `isaac-ir` VM and emits real
//!    PTX text,
//! 2. an analytical [`isaac_device::KernelProfile`] (instruction mix,
//!    resource usage, memory traffic) consumed by the performance model,
//! 3. legality verdicts distinguishing the possible space X-hat from the
//!    legal space X (paper Section 4).
//!
//! The GEMM parameterization follows paper Figure 3: per-thread tile
//! `MS x NS`, per-block tile `ML x NL`, prefetch depth `U`, and the three
//! reduction-splitting parameters `KS` (within a thread), `KL` (within a
//! block, across warps) and `KG` (across the grid, accumulated with global
//! atomics). Convolutions are lowered to implicit GEMM (M' = K filters,
//! N' = N*P*Q outputs, K' = C*R*S reduction) with a host-precomputed
//! indirection table for the scrambled shared-memory loads, mirroring
//! Section 3.3 and the cuDNN `IMPLICIT_PRECOMP_GEMM` algorithm the paper
//! benchmarks against.

pub mod config;
pub mod conv;
pub mod gemm;
pub mod legality;
pub mod profile;
pub mod reference;
pub mod shapes;

pub use config::{BoundsMode, GemmConfig};
pub use legality::{ConfigIssue, ParamRange, SPACE};
pub use shapes::{ConvShape, GemmShape};
