//! The possible space X-hat and the legal space X (paper Section 4).
//!
//! X-hat is the cartesian product of per-parameter value lists (every
//! parameter a power of two); X is the subset that compiles *and* executes
//! safely for a given input on a given device: tile/thread divisibility,
//! vectorization alignment against the input layout, shared-memory and
//! register capacity, and architecture-specific constraints (no f64 global
//! atomics before Pascal). Legality depends on both tuning *and* input
//! parameters -- that is exactly why "more than 99.9% of uniformly sampled
//! configurations are illegal" in the paper and why the generative model of
//! `isaac-core` earns its keep.

use crate::config::GemmConfig;
use crate::shapes::GemmShape;
use isaac_device::{DType, DeviceSpec, MicroArch};

/// Value lists for each tuning parameter: the possible space X-hat.
#[derive(Debug, Clone)]
pub struct ParamRange {
    /// Parameter name (paper notation).
    pub name: &'static str,
    /// Allowed values (powers of two).
    pub values: &'static [u32],
}

/// The sampling space used throughout the reproduction: 9 tuning
/// parameters, each a power of two, matching the Section 4 setup.
pub const SPACE: &[ParamRange] = &[
    ParamRange {
        name: "Ms",
        values: &[1, 2, 4, 8, 16],
    },
    ParamRange {
        name: "Ns",
        values: &[1, 2, 4, 8, 16],
    },
    ParamRange {
        name: "ML",
        values: &[16, 32, 64, 128],
    },
    ParamRange {
        name: "NL",
        values: &[16, 32, 64, 128],
    },
    ParamRange {
        name: "U",
        values: &[1, 2, 4, 8, 16],
    },
    ParamRange {
        name: "Ks",
        values: &[1, 2, 4],
    },
    ParamRange {
        name: "KL",
        values: &[1, 2, 4, 8],
    },
    ParamRange {
        name: "KG",
        values: &[1, 2, 4, 8, 16, 32, 64],
    },
    ParamRange {
        name: "vec",
        values: &[1, 2, 4],
    },
];

/// Number of points in X-hat.
pub fn space_size() -> u64 {
    SPACE.iter().map(|p| p.values.len() as u64).product()
}

/// Decode the configuration at a given index of the cartesian space
/// (mixed-radix little-endian over [`SPACE`], first parameter fastest).
fn decode(mut idx: usize) -> GemmConfig {
    let mut v = [0u32; 9];
    for (slot, range) in v.iter_mut().zip(SPACE.iter()) {
        let size = range.values.len();
        *slot = range.values[idx % size];
        idx /= size;
    }
    GemmConfig::from_vector(v)
}

/// The full cartesian space X-hat, decoded **once** per process into a
/// flat table in index order.
///
/// Runtime inference walks this space on every uncached query; decoding
/// the mixed-radix index into a [`GemmConfig`] each time cost more than
/// the legality checks themselves. The table is ~500k configs x 36 B and
/// is shared by every thread of the parallel query engine (chunk `i`
/// of a query always covers `table[i*C..(i+1)*C]`, which is what keeps
/// parallel reductions index-ordered and deterministic).
pub fn space_table() -> &'static [GemmConfig] {
    static TABLE: std::sync::OnceLock<Vec<GemmConfig>> = std::sync::OnceLock::new();
    TABLE
        .get_or_init(|| (0..space_size() as usize).map(decode).collect())
        .as_slice()
}

/// Tuning-parameter feature rows aligned with [`space_table`]: entry `i`
/// holds the 9 parameter values of `space_table()[i]`, encoded exactly as
/// `isaac_core::features` encodes tuning features (`log2` when `log`,
/// raw otherwise; a test over there pins the bit-equality down).
///
/// The encodings depend only on the configuration -- never on the query's
/// input shape -- so the tuning half of every candidate's feature row can
/// be precomputed once per process. The runtime query engine turns its
/// per-candidate feature construction into a 9-float copy from this
/// table, dropping the `log2` calls that used to run ~500k times per
/// cold tune.
pub fn space_feature_table(log: bool) -> &'static [[f32; 9]] {
    fn build(log: bool) -> Vec<[f32; 9]> {
        space_table()
            .iter()
            .map(|cfg| {
                let mut row = [0.0f32; 9];
                for (slot, v) in row.iter_mut().zip(cfg.as_vector()) {
                    *slot = if log {
                        ((v as f64).max(1e-9)).log2() as f32
                    } else {
                        v as f32
                    };
                }
                row
            })
            .collect()
    }
    static LOG: std::sync::OnceLock<Vec<[f32; 9]>> = std::sync::OnceLock::new();
    static RAW: std::sync::OnceLock<Vec<[f32; 9]>> = std::sync::OnceLock::new();
    if log {
        LOG.get_or_init(|| build(true)).as_slice()
    } else {
        RAW.get_or_init(|| build(false)).as_slice()
    }
}

/// Why a configuration is illegal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigIssue {
    /// A parameter value is outside its allowed list.
    OutsideSpace(&'static str),
    /// Thread tile does not divide the block tile.
    TileMismatch,
    /// Thread count outside [32, 1024] or not a warp multiple.
    ThreadCount(u32),
    /// Cooperative tile loads do not evenly partition the tile.
    LoadPartition,
    /// Vector width incompatible with the tile or input dimensions.
    Vectorization,
    /// Shared memory demand exceeds the per-block limit.
    SharedMemory(u32),
    /// Register demand exceeds the per-thread limit.
    Registers(u32),
    /// Zero blocks would fit on an SM (register file / smem exhausted).
    Occupancy,
    /// Per-thread reduction split deeper than the prefetch depth.
    SplitTooDeep,
    /// fp16 kernels require an even NS for fp16x2 packing.
    HalfPacking,
    /// f64 global atomics (KG > 1) are unsupported on this architecture.
    AtomicsUnsupported,
}

impl std::fmt::Display for ConfigIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigIssue::OutsideSpace(p) => write!(f, "parameter {p} outside its value list"),
            ConfigIssue::TileMismatch => f.write_str("thread tile does not divide block tile"),
            ConfigIssue::ThreadCount(t) => write!(f, "thread count {t} outside [32, 1024]"),
            ConfigIssue::LoadPartition => {
                f.write_str("cooperative loads do not partition the shared tiles")
            }
            ConfigIssue::Vectorization => {
                f.write_str("vector width incompatible with layout/shape")
            }
            ConfigIssue::SharedMemory(b) => write!(f, "shared memory {b} B over limit"),
            ConfigIssue::Registers(r) => write!(f, "estimated {r} registers over limit"),
            ConfigIssue::Occupancy => f.write_str("zero resident blocks per SM"),
            ConfigIssue::SplitTooDeep => f.write_str("Ks exceeds or does not divide U"),
            ConfigIssue::HalfPacking => f.write_str("fp16 requires even NS"),
            ConfigIssue::AtomicsUnsupported => {
                f.write_str("f64 global atomics unavailable on this architecture")
            }
        }
    }
}

/// Estimated registers per thread for a configuration (shared by legality
/// and the analytical profile).
pub fn estimate_regs(cfg: &GemmConfig, dtype: DType) -> u32 {
    let rpe = dtype.regs_per_element();
    let acc = cfg.ms as f64 * cfg.ns as f64 * cfg.ks as f64 * rpe;
    let frags = (cfg.ms + cfg.ns) as f64 * rpe;
    // Per cooperative load: 64-bit address (2), running k index (1), shared
    // store offset (1).
    let loads = (cfg.loads_a() + cfg.loads_b()) as f64 * 4.0;
    let staging = cfg.vec as f64 * rpe;
    (24.0 + acc + frags + loads + staging).ceil() as u32
}

/// Check whether each parameter value belongs to the space X-hat.
pub fn in_space(cfg: &GemmConfig) -> Result<(), ConfigIssue> {
    let v = cfg.as_vector();
    for (range, &val) in SPACE.iter().zip(v.iter()) {
        if !range.values.contains(&val) {
            return Err(ConfigIssue::OutsideSpace(range.name));
        }
    }
    Ok(())
}

/// Full legality check of a `(tuning, input)` pair on a device: membership
/// in X.
pub fn check(cfg: &GemmConfig, shape: &GemmShape, spec: &DeviceSpec) -> Result<(), ConfigIssue> {
    in_space(cfg)?;
    check_physical(cfg, shape, spec)
}

/// The physical subset of the legality rules: everything except membership
/// in the curated value lists. Used on its own when sampling rawer spaces
/// (the Table 1 experiment draws every parameter from powers of two in
/// `[1, 16]`, which is intentionally outside the curated lists).
pub fn check_physical(
    cfg: &GemmConfig,
    shape: &GemmShape,
    spec: &DeviceSpec,
) -> Result<(), ConfigIssue> {
    if cfg.ms > cfg.ml || cfg.ns > cfg.nl {
        return Err(ConfigIssue::TileMismatch);
    }
    let threads = cfg.threads();
    if !(32..=1024).contains(&threads) || !threads.is_multiple_of(32) {
        return Err(ConfigIssue::ThreadCount(threads));
    }
    let uk = cfg.uk();
    let per_round = threads * cfg.vec;
    if !(cfg.ml * uk).is_multiple_of(per_round)
        || !(cfg.nl * uk).is_multiple_of(per_round)
        || cfg.ml * uk < per_round
        || cfg.nl * uk < per_round
    {
        return Err(ConfigIssue::LoadPartition);
    }
    if cfg.vec > 1 {
        // A loads are contiguous along M (not transposed) or K (transposed).
        let a_ok = if shape.trans_a {
            uk.is_multiple_of(cfg.vec) && shape.k.is_multiple_of(cfg.vec)
        } else {
            cfg.ml.is_multiple_of(cfg.vec) && shape.m.is_multiple_of(cfg.vec)
        };
        // B loads are contiguous along K (not transposed) or N (transposed).
        let b_ok = if shape.trans_b {
            cfg.nl.is_multiple_of(cfg.vec) && shape.n.is_multiple_of(cfg.vec)
        } else {
            uk.is_multiple_of(cfg.vec) && shape.k.is_multiple_of(cfg.vec)
        };
        if !a_ok || !b_ok {
            return Err(ConfigIssue::Vectorization);
        }
    }
    if cfg.ks > cfg.u || !cfg.u.is_multiple_of(cfg.ks) {
        return Err(ConfigIssue::SplitTooDeep);
    }
    if shape.dtype == DType::F16 && !cfg.ns.is_multiple_of(2) {
        return Err(ConfigIssue::HalfPacking);
    }
    if cfg.kg > 1 && shape.dtype == DType::F64 && spec.arch == MicroArch::Maxwell {
        return Err(ConfigIssue::AtomicsUnsupported);
    }

    // Account shared memory exactly as the kernels allocate it: A/B tiles
    // in data precision plus the KL-reduction buffer in accumulator
    // precision (see `crate::profile::smem_bytes`).
    let smem_bytes = crate::profile::smem_bytes(cfg, shape.dtype);
    if smem_bytes > spec.max_smem_per_block {
        return Err(ConfigIssue::SharedMemory(smem_bytes));
    }
    let regs = estimate_regs(cfg, shape.dtype);
    if regs > spec.max_regs_per_thread {
        return Err(ConfigIssue::Registers(regs));
    }
    // One block must fit on an SM.
    let regs_per_block = regs * threads;
    if regs_per_block > spec.regs_per_sm || smem_bytes > spec.smem_per_sm {
        return Err(ConfigIssue::Occupancy);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use isaac_device::specs::{gtx980ti, tesla_p100};

    fn square_shape() -> GemmShape {
        GemmShape::new(2048, 2048, 2048, "N", "T", DType::F32)
    }

    #[test]
    fn default_config_is_legal() {
        let cfg = GemmConfig::default();
        assert_eq!(check(&cfg, &square_shape(), &tesla_p100()), Ok(()));
    }

    #[test]
    fn outside_space_detected() {
        let cfg = GemmConfig {
            ms: 3,
            ..Default::default()
        };
        assert_eq!(
            check(&cfg, &square_shape(), &tesla_p100()),
            Err(ConfigIssue::OutsideSpace("Ms"))
        );
    }

    #[test]
    fn thread_count_limits() {
        // 128/1 * 128/1 = 16384 threads.
        let cfg = GemmConfig {
            ms: 1,
            ns: 1,
            ml: 128,
            nl: 128,
            ..Default::default()
        };
        assert!(matches!(
            check(&cfg, &square_shape(), &tesla_p100()),
            Err(ConfigIssue::ThreadCount(_))
        ));
        // 16/16=1 x 16/16=1 x KL=1 -> 1 thread: too few.
        let cfg = GemmConfig {
            ms: 16,
            ns: 16,
            ml: 16,
            nl: 16,
            u: 16,
            vec: 1,
            ..Default::default()
        };
        assert!(matches!(
            check(&cfg, &square_shape(), &tesla_p100()),
            Err(ConfigIssue::ThreadCount(_))
        ));
    }

    #[test]
    fn load_partition_must_divide() {
        // threads*vec = 64*4 = 256; ML*UK = 16*2 = 32 < 256.
        let cfg = GemmConfig {
            ml: 16,
            nl: 128,
            ms: 2,
            ns: 16,
            u: 2,
            ..Default::default()
        };
        assert_eq!(
            check(&cfg, &square_shape(), &tesla_p100()),
            Err(ConfigIssue::LoadPartition)
        );
    }

    #[test]
    fn vectorization_respects_input_shape() {
        let cfg = GemmConfig::default(); // vec = 4
                                         // M = 30 not divisible by 4, A not transposed.
        let shape = GemmShape::new(30, 64, 64, "N", "N", DType::F32);
        assert_eq!(
            check(&cfg, &shape, &tesla_p100()),
            Err(ConfigIssue::Vectorization)
        );
        // Scalar loads make it legal again.
        let cfg1 = GemmConfig {
            vec: 1,
            u: 2,
            ..Default::default()
        };
        assert_eq!(check(&cfg1, &shape, &tesla_p100()), Ok(()));
    }

    #[test]
    fn smem_limit_enforced() {
        // (128+128)*16*KL4 * 4B = 64 KiB > 48 KiB limit.
        let cfg = GemmConfig {
            ml: 128,
            nl: 128,
            ms: 8,
            ns: 8,
            u: 16,
            kl: 4,
            ..Default::default()
        };
        assert!(matches!(
            check(&cfg, &square_shape(), &tesla_p100()),
            Err(ConfigIssue::SharedMemory(_))
        ));
    }

    #[test]
    fn f64_atomics_maxwell_only_illegal_there() {
        let cfg = GemmConfig {
            kg: 8,
            ..Default::default()
        };
        let shape = GemmShape::new(256, 256, 4096, "N", "T", DType::F64);
        assert_eq!(
            check(&cfg, &shape, &gtx980ti()),
            Err(ConfigIssue::AtomicsUnsupported)
        );
        assert_eq!(check(&cfg, &shape, &tesla_p100()), Ok(()));
    }

    #[test]
    fn f16_requires_even_ns() {
        // 64/8 x 64/1 = 512 threads, loads partition with vec=1, u=8.
        let cfg = GemmConfig {
            ms: 8,
            ns: 1,
            ml: 64,
            nl: 64,
            u: 8,
            vec: 1,
            ..Default::default()
        };
        let f16 = GemmShape::new(2048, 2048, 2048, "N", "T", DType::F16);
        assert_eq!(
            check(&cfg, &f16, &tesla_p100()),
            Err(ConfigIssue::HalfPacking)
        );
        let f32s = square_shape();
        assert_eq!(check(&cfg, &f32s, &tesla_p100()), Ok(()));
    }

    #[test]
    fn ks_must_divide_u() {
        let cfg = GemmConfig {
            ks: 4,
            u: 2,
            vec: 1,
            ..Default::default()
        };
        assert_eq!(
            check(&cfg, &square_shape(), &tesla_p100()),
            Err(ConfigIssue::SplitTooDeep)
        );
    }

    #[test]
    fn space_size_is_large() {
        assert_eq!(space_size(), 5 * 5 * 4 * 4 * 5 * 3 * 4 * 7 * 3);
    }

    #[test]
    fn space_table_is_complete_and_distinct() {
        let table = space_table();
        assert_eq!(table.len() as u64, space_size());
        let set: std::collections::HashSet<[u32; 9]> =
            table.iter().map(|c| c.as_vector()).collect();
        assert_eq!(set.len(), table.len(), "decode must be a bijection");
        for cfg in table.iter().step_by(9973) {
            assert_eq!(in_space(cfg), Ok(()));
        }
    }

    #[test]
    fn register_estimate_scales_with_tile_and_dtype() {
        let small = GemmConfig {
            ms: 2,
            ns: 2,
            ..Default::default()
        };
        let big = GemmConfig {
            ms: 16,
            ns: 16,
            ml: 128,
            nl: 128,
            ..Default::default()
        };
        assert!(estimate_regs(&big, DType::F32) > estimate_regs(&small, DType::F32));
        assert!(estimate_regs(&big, DType::F64) > estimate_regs(&big, DType::F32));
        assert!(estimate_regs(&big, DType::F16) < estimate_regs(&big, DType::F32));
    }
}
