//! Input descriptions: the *input parameters* of the tuning problem.
//!
//! For GEMM the paper counts six input parameters: three shapes (M, N, K),
//! one data type and two transposition layouts. For CONV the inputs are the
//! seven tensor dimensions (N, P, Q, K, C, R, S) plus the data type; the
//! implicit-GEMM lowering reduces them to an equivalent GEMM shape with an
//! indirection table.

use isaac_device::DType;

/// A GEMM problem: `C = op(A) op(B)` with column-major storage (BLAS
/// convention, which cuBLAS uses).
///
/// `op(A)` is `M x K`; `op(B)` is `K x N`; `C` is `M x N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of `op(A)` and `C`.
    pub m: u32,
    /// Columns of `op(B)` and `C`.
    pub n: u32,
    /// Reduction depth.
    pub k: u32,
    /// Whether `A` is transposed (stored `K x M`).
    pub trans_a: bool,
    /// Whether `B` is transposed (stored `N x K`).
    pub trans_b: bool,
    /// Element type.
    pub dtype: DType,
}

impl GemmShape {
    /// Convenience constructor using the BLAS `"N"`/`"T"` convention,
    /// e.g. `GemmShape::new(2560, 16, 2560, "N", "N", DType::F32)`.
    pub fn new(m: u32, n: u32, k: u32, ta: &str, tb: &str, dtype: DType) -> Self {
        GemmShape {
            m,
            n,
            k,
            trans_a: ta.eq_ignore_ascii_case("t"),
            trans_b: tb.eq_ignore_ascii_case("t"),
            dtype,
        }
    }

    /// Useful floating-point operations: `2 * M * N * K`.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Number of elements in the `A` buffer.
    pub fn a_len(&self) -> usize {
        self.m as usize * self.k as usize
    }

    /// Number of elements in the `B` buffer.
    pub fn b_len(&self) -> usize {
        self.k as usize * self.n as usize
    }

    /// Number of elements in the `C` buffer.
    pub fn c_len(&self) -> usize {
        self.m as usize * self.n as usize
    }

    /// Leading dimension of `A` as stored.
    pub fn lda(&self) -> u32 {
        if self.trans_a {
            self.k
        } else {
            self.m
        }
    }

    /// Leading dimension of `B` as stored.
    pub fn ldb(&self) -> u32 {
        if self.trans_b {
            self.n
        } else {
            self.k
        }
    }

    /// Layout string in BLAS convention, e.g. `"NT"`.
    pub fn layout(&self) -> String {
        let c = |t: bool| if t { 'T' } else { 'N' };
        format!("{}{}", c(self.trans_a), c(self.trans_b))
    }

    /// Mangled short name, e.g. `sgemm_nt_2048x2048x2048`.
    pub fn name(&self) -> String {
        format!(
            "{}gemm_{}_{}x{}x{}",
            self.dtype.blas_prefix(),
            self.layout().to_lowercase(),
            self.m,
            self.n,
            self.k
        )
    }
}

/// A multi-channel convolution problem (paper Eq. 1), unit stride, no
/// padding -- the configuration used throughout the paper's evaluation:
/// `O[k, p, q, n] = sum_{c,r,s} I[c, p+r, q+s, n] * F[c, r, s, k]`.
///
/// Tensor layouts follow the paper: `I` is `C x H x W x N`, `F` is
/// `C x R x S x K`, `O` is `K x P x Q x N`, with the *last* index fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size.
    pub n: u32,
    /// Input channels.
    pub c: u32,
    /// Input height.
    pub h: u32,
    /// Input width.
    pub w: u32,
    /// Output channels (filters).
    pub k: u32,
    /// Filter height.
    pub r: u32,
    /// Filter width.
    pub s: u32,
    /// Element type.
    pub dtype: DType,
}

impl ConvShape {
    /// Construct from output dimensions `(N, P, Q, K, C, R, S)` as listed
    /// in paper Table 5 (input H/W derived for unit stride, no padding).
    #[allow(clippy::too_many_arguments)] // mirrors the paper's Table 5 column order
    pub fn from_output(
        n: u32,
        p: u32,
        q: u32,
        k: u32,
        c: u32,
        r: u32,
        s: u32,
        dtype: DType,
    ) -> Self {
        ConvShape {
            n,
            c,
            h: p + r - 1,
            w: q + s - 1,
            k,
            r,
            s,
            dtype,
        }
    }

    /// Output height `P = H - R + 1`.
    pub fn p(&self) -> u32 {
        self.h - self.r + 1
    }

    /// Output width `Q = W - S + 1`.
    pub fn q(&self) -> u32 {
        self.w - self.s + 1
    }

    /// Implicit-GEMM reduction length `CRS`.
    pub fn crs(&self) -> u32 {
        self.c * self.r * self.s
    }

    /// Implicit-GEMM output columns `NPQ`.
    pub fn npq(&self) -> u32 {
        self.n * self.p() * self.q()
    }

    /// Useful FLOPs: `2 * K * NPQ * CRS`.
    pub fn flops(&self) -> f64 {
        2.0 * self.k as f64 * self.npq() as f64 * self.crs() as f64
    }

    /// Elements in the input tensor `I`.
    pub fn i_len(&self) -> usize {
        (self.c * self.h * self.w * self.n) as usize
    }

    /// Elements in the filter tensor `F`.
    pub fn f_len(&self) -> usize {
        (self.c * self.r * self.s * self.k) as usize
    }

    /// Elements in the output tensor `O`.
    pub fn o_len(&self) -> usize {
        (self.k * self.p() * self.q() * self.n) as usize
    }

    /// The equivalent implicit GEMM shape: `M' = K`, `N' = NPQ`,
    /// `K' = CRS`. The "A" operand (filters) is contiguous along `K` --
    /// i.e. behaves like a non-transposed column-major `A`; the "B"
    /// operand (image patches) is gathered through the indirection table.
    pub fn implicit_gemm(&self) -> GemmShape {
        GemmShape {
            m: self.k,
            n: self.npq(),
            k: self.crs(),
            trans_a: false,
            trans_b: false,
            dtype: self.dtype,
        }
    }

    /// Mangled short name, e.g. `sconv_n16_c32_k64_14x14_r3s3`.
    pub fn name(&self) -> String {
        format!(
            "{}conv_n{}_c{}_k{}_{}x{}_r{}s{}",
            self.dtype.blas_prefix(),
            self.n,
            self.c,
            self.k,
            self.p(),
            self.q(),
            self.r,
            self.s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_shape_basics() {
        let s = GemmShape::new(2560, 16, 2560, "N", "T", DType::F32);
        assert_eq!(s.layout(), "NT");
        assert_eq!(s.flops(), 2.0 * 2560.0 * 16.0 * 2560.0);
        assert_eq!(s.lda(), 2560);
        assert_eq!(s.ldb(), 16);
        assert_eq!(s.name(), "sgemm_nt_2560x16x2560");
    }

    #[test]
    fn gemm_lda_follows_transposition() {
        let nt = GemmShape::new(100, 50, 30, "N", "N", DType::F64);
        assert_eq!(nt.lda(), 100);
        assert_eq!(nt.ldb(), 30);
        let tt = GemmShape::new(100, 50, 30, "T", "T", DType::F64);
        assert_eq!(tt.lda(), 30);
        assert_eq!(tt.ldb(), 50);
    }

    #[test]
    fn conv_output_dims() {
        // Conv5 of Table 5: N=8 P=54 Q=54 K=64 C=64 R=3 S=3.
        let c = ConvShape::from_output(8, 54, 54, 64, 64, 3, 3, DType::F32);
        assert_eq!(c.h, 56);
        assert_eq!(c.w, 56);
        assert_eq!(c.p(), 54);
        assert_eq!(c.q(), 54);
        assert_eq!(c.npq(), 8 * 54 * 54);
        assert_eq!(c.crs(), 64 * 9);
    }

    #[test]
    fn conv_table5_npq_crs_match_paper() {
        // Conv7: 16 14 14 48 512 5 5 -> NPQ 3136, CRS 12800.
        let c = ConvShape::from_output(16, 14, 14, 48, 512, 5, 5, DType::F32);
        assert_eq!(c.npq(), 3136);
        assert_eq!(c.crs(), 12800);
        // Conv14: 16 7 7 2048 1024 1 1 -> NPQ 784, CRS 1024.
        let c = ConvShape::from_output(16, 7, 7, 2048, 1024, 1, 1, DType::F32);
        assert_eq!(c.npq(), 784);
        assert_eq!(c.crs(), 1024);
    }

    #[test]
    fn implicit_gemm_dims() {
        let c = ConvShape::from_output(16, 24, 240, 32, 16, 3, 3, DType::F32);
        let g = c.implicit_gemm();
        assert_eq!(g.m, 32);
        assert_eq!(g.n, 92160);
        assert_eq!(g.k, 144);
        assert!(!g.trans_a && !g.trans_b);
    }

    #[test]
    fn conv_flops_consistent_with_gemm_view() {
        let c = ConvShape::from_output(8, 27, 27, 128, 128, 3, 3, DType::F16);
        let g = c.implicit_gemm();
        assert_eq!(c.flops(), g.flops());
    }
}
