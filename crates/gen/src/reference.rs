//! Reference CPU implementations of GEMM and CONV, used as ground truth
//! when validating generated kernels on the VM.
//!
//! All references are deliberately naive triple loops -- slow but obviously
//! correct. Half-precision follows the generated kernels' numerics: inputs
//! quantized to binary16, accumulation in f32 (the `cublasGemmEx`
//! pseudo-fp16 compute mode), result quantized back to binary16.

use crate::shapes::{ConvShape, GemmShape};
use isaac_ir::{f16_from_f32, f16_to_f32};

/// `C = op(A) op(B)` in f32 (column-major).
pub fn gemm_f32(shape: &GemmShape, a: &[f32], b: &[f32], c: &mut [f32]) {
    let (m, n, k) = (shape.m as usize, shape.n as usize, shape.k as usize);
    assert_eq!(a.len(), m * k, "A length");
    assert_eq!(b.len(), k * n, "B length");
    assert_eq!(c.len(), m * n, "C length");
    for col in 0..n {
        for row in 0..m {
            let mut acc = 0.0f32;
            for kk in 0..k {
                let av = if shape.trans_a {
                    a[kk + row * k]
                } else {
                    a[row + kk * m]
                };
                let bv = if shape.trans_b {
                    b[col + kk * n]
                } else {
                    b[kk + col * k]
                };
                acc = av.mul_add(bv, acc);
            }
            c[row + col * m] = acc;
        }
    }
}

/// `C = op(A) op(B)` in f64 (column-major).
pub fn gemm_f64(shape: &GemmShape, a: &[f64], b: &[f64], c: &mut [f64]) {
    let (m, n, k) = (shape.m as usize, shape.n as usize, shape.k as usize);
    assert_eq!(a.len(), m * k, "A length");
    assert_eq!(b.len(), k * n, "B length");
    assert_eq!(c.len(), m * n, "C length");
    for col in 0..n {
        for row in 0..m {
            let mut acc = 0.0f64;
            for kk in 0..k {
                let av = if shape.trans_a {
                    a[kk + row * k]
                } else {
                    a[row + kk * m]
                };
                let bv = if shape.trans_b {
                    b[col + kk * n]
                } else {
                    b[kk + col * k]
                };
                acc = av.mul_add(bv, acc);
            }
            c[row + col * m] = acc;
        }
    }
}

/// Quantize a value to binary16 precision.
fn q16(x: f32) -> f32 {
    f16_to_f32(f16_from_f32(x))
}

/// `C = op(A) op(B)` with f16 inputs/outputs and f32 accumulation.
pub fn gemm_f16(shape: &GemmShape, a: &[f32], b: &[f32], c: &mut [f32]) {
    let (m, n, k) = (shape.m as usize, shape.n as usize, shape.k as usize);
    assert_eq!(a.len(), m * k, "A length");
    assert_eq!(b.len(), k * n, "B length");
    assert_eq!(c.len(), m * n, "C length");
    for col in 0..n {
        for row in 0..m {
            let mut acc = 0.0f32;
            for kk in 0..k {
                let av = if shape.trans_a {
                    a[kk + row * k]
                } else {
                    a[row + kk * m]
                };
                let bv = if shape.trans_b {
                    b[col + kk * n]
                } else {
                    b[kk + col * k]
                };
                acc = q16(av).mul_add(q16(bv), acc);
            }
            c[row + col * m] = q16(acc);
        }
    }
}

/// Multi-channel convolution (paper Eq. 1), unit stride, valid padding,
/// f32. Layouts: `I[C][H][W][N]`, `F[C][R][S][K]`, `O[K][P][Q][N]`, last
/// index fastest.
pub fn conv_f32(shape: &ConvShape, input: &[f32], filters: &[f32], out: &mut [f32]) {
    let ConvShape {
        n,
        c,
        h,
        w,
        k,
        r,
        s,
        ..
    } = *shape;
    let (n, c, h, w, k, r, s) = (
        n as usize, c as usize, h as usize, w as usize, k as usize, r as usize, s as usize,
    );
    let p = h - r + 1;
    let q = w - s + 1;
    assert_eq!(input.len(), c * h * w * n, "I length");
    assert_eq!(filters.len(), c * r * s * k, "F length");
    assert_eq!(out.len(), k * p * q * n, "O length");
    for ko in 0..k {
        for po in 0..p {
            for qo in 0..q {
                for no in 0..n {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ri in 0..r {
                            for si in 0..s {
                                let iv = input[((ci * h + (po + ri)) * w + (qo + si)) * n + no];
                                let fv = filters[((ci * r + ri) * s + si) * k + ko];
                                acc = iv.mul_add(fv, acc);
                            }
                        }
                    }
                    out[((ko * p + po) * q + qo) * n + no] = acc;
                }
            }
        }
    }
}

/// Multi-channel convolution with f16 inputs and f32 accumulation.
pub fn conv_f16(shape: &ConvShape, input: &[f32], filters: &[f32], out: &mut [f32]) {
    let ConvShape {
        n,
        c,
        h,
        w,
        k,
        r,
        s,
        ..
    } = *shape;
    let (n, c, h, w, k, r, s) = (
        n as usize, c as usize, h as usize, w as usize, k as usize, r as usize, s as usize,
    );
    let p = h - r + 1;
    let q = w - s + 1;
    for ko in 0..k {
        for po in 0..p {
            for qo in 0..q {
                for no in 0..n {
                    let mut acc = 0.0f32;
                    for ci in 0..c {
                        for ri in 0..r {
                            for si in 0..s {
                                let iv = input[((ci * h + (po + ri)) * w + (qo + si)) * n + no];
                                let fv = filters[((ci * r + ri) * s + si) * k + ko];
                                acc = q16(iv).mul_add(q16(fv), acc);
                            }
                        }
                    }
                    out[((ko * p + po) * q + qo) * n + no] = q16(acc);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isaac_device::DType;

    #[test]
    fn identity_gemm() {
        // A = I (3x3), B arbitrary: C must equal B.
        let shape = GemmShape::new(3, 2, 3, "N", "N", DType::F32);
        let mut a = vec![0.0f32; 9];
        for i in 0..3 {
            a[i + i * 3] = 1.0;
        }
        let b: Vec<f32> = (0..6).map(|x| x as f32).collect();
        let mut c = vec![0.0f32; 6];
        gemm_f32(&shape, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn transposition_is_consistent() {
        // C from (A, N) must equal C from (A^T stored transposed, T).
        let m = 4;
        let n = 3;
        let k = 5;
        let a: Vec<f32> = (0..m * k).map(|x| (x as f32).sin()).collect();
        // Build A^T stored as K x M column-major: at[kk + row*k] = a[row + kk*m]
        let mut at = vec![0.0f32; m * k];
        for row in 0..m {
            for kk in 0..k {
                at[kk + row * k] = a[row + kk * m];
            }
        }
        let b: Vec<f32> = (0..k * n).map(|x| (x as f32).cos()).collect();
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm_f32(
            &GemmShape::new(m as u32, n as u32, k as u32, "N", "N", DType::F32),
            &a,
            &b,
            &mut c1,
        );
        gemm_f32(
            &GemmShape::new(m as u32, n as u32, k as u32, "T", "N", DType::F32),
            &at,
            &b,
            &mut c2,
        );
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn f64_matches_f32_on_small_ints() {
        let shape32 = GemmShape::new(4, 4, 4, "N", "T", DType::F32);
        let a: Vec<f32> = (0..16).map(|x| (x % 5) as f32).collect();
        let b: Vec<f32> = (0..16).map(|x| (x % 3) as f32).collect();
        let mut c32 = vec![0.0f32; 16];
        gemm_f32(&shape32, &a, &b, &mut c32);
        let a64: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let b64: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        let mut c64 = vec![0.0f64; 16];
        gemm_f64(&shape32, &a64, &b64, &mut c64);
        for (x, y) in c32.iter().zip(&c64) {
            assert_eq!(*x as f64, *y);
        }
    }

    #[test]
    fn conv_1x1_filters_reduce_to_channel_mix() {
        // With R=S=1, conv is a pure channel mixing: O[k,p,q,n] =
        // sum_c I[c,p,q,n] * F[c,k].
        let shape = ConvShape::from_output(2, 3, 3, 2, 4, 1, 1, DType::F32);
        let i: Vec<f32> = (0..shape.i_len()).map(|x| (x as f32 * 0.1).sin()).collect();
        let f: Vec<f32> = (0..shape.f_len()).map(|x| (x as f32 * 0.2).cos()).collect();
        let mut o = vec![0.0f32; shape.o_len()];
        conv_f32(&shape, &i, &f, &mut o);
        // Check one output element by hand.
        let (p, q, n, k) = (1usize, 2usize, 1usize, 1usize);
        let mut expect = 0.0f32;
        for c in 0..4usize {
            let iv = i[((c * 3 + p) * 3 + q) * 2 + n];
            let fv = f[c * 2 + k];
            expect = iv.mul_add(fv, expect);
        }
        let got = o[((k * 3 + p) * 3 + q) * 2 + n];
        assert!((got - expect).abs() < 1e-6);
    }

    #[test]
    fn conv_single_pixel_equals_dot_product() {
        // H=R, W=S -> P=Q=1: each output is a full dot product over CRS.
        let shape = ConvShape {
            n: 1,
            c: 3,
            h: 2,
            w: 2,
            k: 2,
            r: 2,
            s: 2,
            dtype: DType::F32,
        };
        let i: Vec<f32> = (0..shape.i_len()).map(|x| x as f32).collect();
        let f: Vec<f32> = (0..shape.f_len()).map(|x| 1.0 + x as f32).collect();
        let mut o = vec![0.0f32; shape.o_len()];
        conv_f32(&shape, &i, &f, &mut o);
        for k in 0..2usize {
            let mut expect = 0.0f32;
            for c in 0..3usize {
                for r in 0..2usize {
                    for s in 0..2usize {
                        expect += i[(c * 2 + r) * 2 + s] * f[((c * 2 + r) * 2 + s) * 2 + k];
                    }
                }
            }
            assert!((o[k] - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn f16_reference_quantizes() {
        let shape = GemmShape::new(2, 2, 2, "N", "N", DType::F16);
        let a = vec![1.0 / 3.0; 4];
        let b = vec![1.0; 4];
        let mut c = vec![0.0f32; 4];
        gemm_f16(&shape, &a, &b, &mut c);
        // 2 * q16(1/3) then re-quantized.
        let expect = q16(2.0 * q16(1.0 / 3.0));
        assert!(c.iter().all(|&v| v == expect));
    }
}
