//! The parameterized GEMM kernel generator (paper Figure 3).
//!
//! Each thread block computes an `ML x NL` tile of `C`; each thread an
//! `MS x NS` sub-tile. Per iteration of the main loop the block
//! cooperatively prefetches an `ML x (U*KL)` slice of `op(A)` and a
//! `(U*KL) x NL` slice of `op(B)` into shared memory (transposing in place
//! when the storage layout requires it), synchronizes, and runs a fully
//! unrolled `U x MS x NS` multiply-accumulate stream per thread.
//!
//! Reduction splitting:
//! * `Ks` keeps `Ks` independent accumulator sets per thread (ILP),
//!   folded together after the main loop;
//! * `KL` partitions each shared slice among `KL` thread groups, whose
//!   partial results are combined through a shared-memory reduction;
//! * `KG` partitions K across `ctaid.z`, with partial tiles accumulated
//!   into `C` by global atomic adds (`C` must be zeroed beforehand).
//!
//! Bounds are enforced with predicated loads/stores; out-of-range tile
//! lanes read zeros, so no host-side padding is ever needed (Section 8.3).
//!
//! Addressing is fully strength-reduced: each cooperative load owns a
//! loop-carried byte address and k-index, bumped once per iteration; the
//! unrolled inner loop reads shared memory at constant offsets from two
//! precomputed fragment bases, so it issues *zero* integer instructions --
//! exactly the property that makes PTX-level generation profitable.

use crate::config::GemmConfig;
use crate::shapes::GemmShape;
use isaac_device::DType;
use isaac_ir::ir::Kernel;
use isaac_ir::vm::{Arg, GpuFault, GpuMemory, LaunchStats, Vm};
use isaac_ir::{BinOp, CmpOp, KernelBuilder, Operand, RegId, Sreg, Ty};

/// A fully lowered GEMM kernel plus its launch geometry.
#[derive(Debug, Clone)]
pub struct BuiltGemm {
    /// Executable IR (also emittable as PTX via [`isaac_ir::emit_ptx`]).
    pub kernel: Kernel,
    /// Grid dimensions.
    pub grid: [u32; 3],
    /// Threads per block.
    pub threads: u32,
    /// K elements per grid-z slice (passed as the `kchunk` argument).
    pub kchunk: u32,
}

fn data_ty(dtype: DType) -> Ty {
    match dtype {
        DType::F16 => Ty::F16,
        DType::F32 => Ty::F32,
        DType::F64 => Ty::F64,
    }
}

/// Accumulator type: f16 kernels accumulate in f32 (pseudo-fp16, the
/// `cublasGemmEx` compute mode used in the paper's comparisons).
fn acc_ty(dtype: DType) -> Ty {
    match dtype {
        DType::F16 | DType::F32 => Ty::F32,
        DType::F64 => Ty::F64,
    }
}

fn log2_size(ty: Ty) -> i64 {
    match ty.size_bytes() {
        2 => 1,
        4 => 2,
        8 => 3,
        other => panic!("unexpected element size {other}"),
    }
}

/// Largest vector width (<= 4) dividing `x`.
fn frag_width(x: u32) -> u8 {
    if x.is_multiple_of(4) {
        4
    } else if x.is_multiple_of(2) {
        2
    } else {
        1
    }
}

/// State of one cooperative tile load, carried across loop iterations.
struct TileLoad {
    /// u64 register holding the current global byte address.
    addr: RegId,
    /// s32 register holding the current global k index.
    k_idx: RegId,
    /// s32 register holding the (loop-invariant) shared-memory byte offset.
    smem_off: RegId,
    /// Loop-invariant row/column-validity predicate.
    span_ok: RegId,
    /// Per-iteration byte step to add to `addr`.
    step: Operand,
    /// Whether the vector lies along the shared tile's contiguous (span)
    /// axis; if not, the store is decomposed into strided scalar stores.
    contiguous: bool,
    /// Stride in bytes between decomposed scalar stores.
    strided_step: i64,
}

/// Build the IR kernel for `cfg` on `shape`.
///
/// The caller is responsible for checking legality first
/// ([`crate::legality::check`]); the builder only debug-asserts geometric
/// divisibility.
pub fn build_kernel(cfg: &GemmConfig, shape: &GemmShape) -> BuiltGemm {
    let dty = data_ty(shape.dtype);
    let aty = acc_ty(shape.dtype);
    let dsh = log2_size(dty);
    let ash = log2_size(aty);
    let (ms, ns) = (cfg.ms as usize, cfg.ns as usize);
    let (ml, nl) = (cfg.ml as i64, cfg.nl as i64);
    let u = cfg.u as usize;
    let uk = cfg.uk() as i64;
    let vec = cfg.vec as u8;
    let threads = cfg.threads();
    let (tm, tn) = (cfg.tm() as i64, cfg.tn() as i64);
    let kchunk = cfg.kchunk(shape);

    debug_assert_eq!((cfg.ml as i64 * uk) % (threads as i64 * vec as i64), 0);
    debug_assert_eq!((cfg.nl as i64 * uk) % (threads as i64 * vec as i64), 0);

    let mut b = KernelBuilder::new(cfg.name(shape));
    let p_a = b.param_ptr("A", dty);
    let p_b = b.param_ptr("B", dty);
    let p_c = b.param_ptr("C", dty);
    let p_m = b.param_s32("M");
    let p_n = b.param_s32("N");
    let p_k = b.param_s32("K");
    let p_kchunk = b.param_s32("kchunk");

    let sm_a = b.shared_array("smA", dty, (ml * uk) as usize);
    let sm_b = b.shared_array("smB", dty, (nl * uk) as usize);
    let sm_r = if cfg.kl > 1 {
        Some(b.shared_array("smR", aty, (ml * nl) as usize))
    } else {
        None
    };

    // ---- prologue -------------------------------------------------------
    let a_ptr = b.ld_param(p_a);
    let b_ptr = b.ld_param(p_b);
    let c_ptr = b.ld_param(p_c);
    let m = b.ld_param(p_m);
    let n = b.ld_param(p_n);
    let k = b.ld_param(p_k);
    let kchunk_r = b.ld_param(p_kchunk);

    let tid = b.sreg(Sreg::TidX);
    let bm = b.sreg(Sreg::CtaIdX);
    let bn = b.sreg(Sreg::CtaIdY);
    let bk = b.sreg(Sreg::CtaIdZ);

    let tidm = b.bin_new(BinOp::Rem, Ty::S32, tid, tm);
    let tmp = b.bin_new(BinOp::Div, Ty::S32, tid, tm);
    let tidn = b.bin_new(BinOp::Rem, Ty::S32, tmp, tn);
    let tidk = b.bin_new(BinOp::Div, Ty::S32, tmp, tn);

    let k0 = b.mul(bk, kchunk_r);
    let k0_end = b.add(k0, kchunk_r);
    let k1 = b.bin_new(BinOp::Min, Ty::S32, k0_end, k);

    // Runtime global strides (bytes) for K-advance when the K axis is the
    // slow (strided) one.
    let step_a: Operand = if shape.trans_a {
        // op(A)(m, k) = A[k + m*K]: advancing k moves contiguously.
        Operand::ImmI(uk << dsh)
    } else {
        // A[m + k*M]: advancing k strides by M elements.
        let e = b.mul(m, uk);
        let by = b.bin_new(BinOp::Shl, Ty::S32, e, dsh);
        let by64 = b.cvt(Ty::U64, by);
        Operand::Reg(by64)
    };
    let step_b: Operand = if shape.trans_b {
        // op(B)(k, n) = B[n + k*N]: advancing k strides by N.
        let e = b.mul(n, uk);
        let by = b.bin_new(BinOp::Shl, Ty::S32, e, dsh);
        let by64 = b.cvt(Ty::U64, by);
        Operand::Reg(by64)
    } else {
        // B[k + n*K]: contiguous in k.
        Operand::ImmI(uk << dsh)
    };

    // ---- cooperative load descriptors ----------------------------------
    let stride = (threads * cfg.vec) as i64;
    let mut a_loads = Vec::with_capacity(cfg.loads_a() as usize);
    for l in 0..cfg.loads_a() as i64 {
        let f = b.mad_s32(tid, vec as i64, l * stride);
        // Decompose the flat tile index into (span, kk): span is the
        // contiguous axis of the *storage* (m when not transposed, else k).
        let (span, kk) = if shape.trans_a {
            let kk = b.bin_new(BinOp::Rem, Ty::S32, f, uk);
            let i = b.bin_new(BinOp::Div, Ty::S32, f, uk);
            (i, kk)
        } else {
            let i = b.bin_new(BinOp::Rem, Ty::S32, f, ml);
            let kk = b.bin_new(BinOp::Div, Ty::S32, f, ml);
            (i, kk)
        };
        let row = b.mad_s32(bm, ml, span);
        let span_ok = b.setp_new(CmpOp::Lt, row, m);
        let k_idx = b.add(k0, kk);
        let elem = if shape.trans_a {
            // A[k + row*K]
            b.mad_s32(row, k, k_idx)
        } else {
            // A[row + k*M]
            b.mad_s32(k_idx, m, row)
        };
        let byte = b.bin_new(BinOp::Shl, Ty::S32, elem, dsh);
        let byte64 = b.cvt(Ty::U64, byte);
        let addr = b.bin_new(BinOp::Add, Ty::U64, a_ptr, byte64);
        // Shared store target: smA[kk * ML + i] (k-major tile).
        let sm_elem = b.mad_s32(kk, ml, span);
        let smem_off = b.bin_new(BinOp::Shl, Ty::S32, sm_elem, dsh);
        a_loads.push(TileLoad {
            addr,
            k_idx,
            smem_off,
            span_ok,
            step: step_a,
            // With A not transposed the global vector lies along m, which
            // is also the contiguous axis of the k-major shared tile.
            contiguous: !shape.trans_a,
            strided_step: ml << dsh,
        });
    }
    let mut b_loads = Vec::with_capacity(cfg.loads_b() as usize);
    for l in 0..cfg.loads_b() as i64 {
        let f = b.mad_s32(tid, vec as i64, l * stride);
        let (span, kk) = if shape.trans_b {
            let j = b.bin_new(BinOp::Rem, Ty::S32, f, nl);
            let kk = b.bin_new(BinOp::Div, Ty::S32, f, nl);
            (j, kk)
        } else {
            let kk = b.bin_new(BinOp::Rem, Ty::S32, f, uk);
            let j = b.bin_new(BinOp::Div, Ty::S32, f, uk);
            (j, kk)
        };
        let col = b.mad_s32(bn, nl, span);
        let span_ok = b.setp_new(CmpOp::Lt, col, n);
        let k_idx = b.add(k0, kk);
        let elem = if shape.trans_b {
            // B[col + k*N]
            b.mad_s32(k_idx, n, col)
        } else {
            // B[k + col*K]
            b.mad_s32(col, k, k_idx)
        };
        let byte = b.bin_new(BinOp::Shl, Ty::S32, elem, dsh);
        let byte64 = b.cvt(Ty::U64, byte);
        let addr = b.bin_new(BinOp::Add, Ty::U64, b_ptr, byte64);
        // Shared store target: smB[kk * NL + j].
        let sm_elem = b.mad_s32(kk, nl, span);
        let smem_off = b.bin_new(BinOp::Shl, Ty::S32, sm_elem, dsh);
        b_loads.push(TileLoad {
            addr,
            k_idx,
            smem_off,
            span_ok,
            step: step_b,
            contiguous: shape.trans_b,
            strided_step: nl << dsh,
        });
    }

    // ---- fragment bases and accumulators --------------------------------
    // aFrag base: smA[(tidk*U)*ML + tidm*MS], in bytes.
    let t1 = b.mul(tidk, u as i64 * ml);
    let t2 = b.mad_s32(tidm, ms as i64, t1);
    let a_frag_base = b.bin_new(BinOp::Shl, Ty::S32, t2, dsh);
    let t3 = b.mul(tidk, u as i64 * nl);
    let t4 = b.mad_s32(tidn, ns as i64, t3);
    let b_frag_base = b.bin_new(BinOp::Shl, Ty::S32, t4, dsh);

    let acc: Vec<RegId> = (0..cfg.ks as usize * ms * ns).map(|_| b.reg(aty)).collect();
    for &r in &acc {
        b.mov(r, 0.0);
    }
    let a_frag = b.reg_vec(aty, ms);
    let b_frag = b.reg_vec(aty, ns);

    // ---- main loop -------------------------------------------------------
    let va = frag_width(cfg.ms);
    let vb = frag_width(cfg.ns);
    let emit_load = |b: &mut KernelBuilder, load: &TileLoad, target: usize| {
        let in_k = b.setp_new(CmpOp::Lt, load.k_idx, k1);
        let guard = b.pred_and(in_k, load.span_ok);
        let stage = b.reg_vec(dty, vec as usize);
        b.ld_global(stage[0], vec, load.addr, 0, Some(guard));
        if load.contiguous {
            b.st_shared(stage[0], vec, target, load.smem_off, 0, None);
        } else {
            for (w, &reg) in stage.iter().enumerate() {
                b.st_shared(
                    reg,
                    1,
                    target,
                    load.smem_off,
                    w as i64 * load.strided_step,
                    None,
                );
            }
        }
        b.bin(BinOp::Add, load.addr, load.addr, load.step);
        b.bin(BinOp::Add, load.k_idx, load.k_idx, uk);
    };
    b.for_loop(k0, k1, uk, |b, _kb| {
        for load in &a_loads {
            emit_load(b, load, sm_a);
        }
        for load in &b_loads {
            emit_load(b, load, sm_b);
        }
        b.barrier();
        for kk in 0..u {
            for iv in 0..ms / va as usize {
                b.ld_shared(
                    a_frag[iv * va as usize],
                    va,
                    sm_a,
                    a_frag_base,
                    ((kk as i64 * ml) + (iv as i64 * va as i64)) << dsh,
                );
            }
            for jv in 0..ns / vb as usize {
                b.ld_shared(
                    b_frag[jv * vb as usize],
                    vb,
                    sm_b,
                    b_frag_base,
                    ((kk as i64 * nl) + (jv as i64 * vb as i64)) << dsh,
                );
            }
            let set = kk % cfg.ks as usize;
            for i in 0..ms {
                for j in 0..ns {
                    let dst = acc[set * ms * ns + i * ns + j];
                    b.fma(dst, a_frag[i], b_frag[j]);
                }
            }
        }
        b.barrier();
    });

    // ---- Ks fold ---------------------------------------------------------
    for set in 1..cfg.ks as usize {
        for e in 0..ms * ns {
            let dst = acc[e];
            let src = acc[set * ms * ns + e];
            b.bin(BinOp::Add, dst, dst, src);
        }
    }

    // ---- KL reduction through shared memory ------------------------------
    let p_group0 = if cfg.kl > 1 {
        let sm_r = sm_r.expect("smR allocated when KL > 1");
        let t = b.mul(tidn, ns as i64 * ml);
        let t2 = b.mad_s32(tidm, ms as i64, t);
        let red_base = b.bin_new(BinOp::Shl, Ty::S32, t2, ash);
        let p0 = b.setp_new(CmpOp::Eq, tidk, 0);
        for i in 0..ms {
            for j in 0..ns {
                let off = ((j as i64 * ml) + i as i64) << ash;
                b.st_shared(acc[i * ns + j], 1, sm_r, red_base, off, Some(p0));
            }
        }
        b.barrier();
        let tmp = b.reg(aty);
        for g in 1..cfg.kl as i64 {
            let pg = b.setp_new(CmpOp::Eq, tidk, g);
            for i in 0..ms {
                for j in 0..ns {
                    let off = ((j as i64 * ml) + i as i64) << ash;
                    b.ld_shared(tmp, 1, sm_r, red_base, off);
                    b.bin(BinOp::Add, tmp, tmp, acc[i * ns + j]);
                    b.st_shared(tmp, 1, sm_r, red_base, off, Some(pg));
                }
            }
            b.barrier();
        }
        for i in 0..ms {
            for j in 0..ns {
                let off = ((j as i64 * ml) + i as i64) << ash;
                b.ld_shared(acc[i * ns + j], 1, sm_r, red_base, off);
            }
        }
        Some(p0)
    } else {
        None
    };

    // ---- write-out --------------------------------------------------------
    let t = b.mul(tidm, ms as i64);
    let row_base = b.mad_s32(bm, ml, t);
    let t = b.mul(tidn, ns as i64);
    let col_base = b.mad_s32(bn, nl, t);
    let row_ok: Vec<RegId> = (0..ms)
        .map(|i| {
            let r = b.add(row_base, i as i64);
            b.setp_new(CmpOp::Lt, r, m)
        })
        .collect();
    for j in 0..ns {
        let col = b.add(col_base, j as i64);
        let col_ok = b.setp_new(CmpOp::Lt, col, n);
        let col_guard = match p_group0 {
            Some(p0) => b.pred_and(col_ok, p0),
            None => col_ok,
        };
        let elem = b.mad_s32(col, m, row_base);
        let byte = b.bin_new(BinOp::Shl, Ty::S32, elem, dsh);
        let byte64 = b.cvt(Ty::U64, byte);
        let addr = b.bin_new(BinOp::Add, Ty::U64, c_ptr, byte64);
        for (i, &rp) in row_ok.iter().enumerate() {
            let guard = b.pred_and(col_guard, rp);
            let val = acc[i * ns + j];
            let off = (i as i64) << dsh;
            if cfg.kg > 1 {
                b.atom_add_global(val, addr, off, Some(guard));
            } else {
                b.st_global(val, 1, addr, off, Some(guard));
            }
        }
    }

    BuiltGemm {
        kernel: b.finish(),
        grid: cfg.grid(shape),
        threads,
        kchunk,
    }
}

/// Execute the kernel for `cfg`/`shape` on the VM with the given inputs
/// (f32 storage; for f16 shapes the data is quantized on upload).
/// Returns the resulting `C` and the dynamic launch statistics.
pub fn run_f32(
    cfg: &GemmConfig,
    shape: &GemmShape,
    a: &[f32],
    b_data: &[f32],
) -> Result<(Vec<f32>, LaunchStats), GpuFault> {
    assert_ne!(shape.dtype, DType::F64, "use run_f64 for f64 shapes");
    let built = build_kernel(cfg, shape);
    let mut mem = GpuMemory::new();
    let (ba, bb, bc) = if shape.dtype == DType::F16 {
        (
            mem.alloc_f16(a),
            mem.alloc_f16(b_data),
            mem.alloc_f16_zeroed(shape.c_len()),
        )
    } else {
        (
            mem.alloc_f32(a),
            mem.alloc_f32(b_data),
            mem.alloc_f32_zeroed(shape.c_len()),
        )
    };
    let stats = Vm::new().launch(
        &built.kernel,
        built.grid,
        built.threads,
        &[
            Arg::Buf(ba),
            Arg::Buf(bb),
            Arg::Buf(bc),
            Arg::I32(shape.m as i32),
            Arg::I32(shape.n as i32),
            Arg::I32(shape.k as i32),
            Arg::I32(built.kchunk as i32),
        ],
        &mut mem,
    )?;
    Ok((mem.read_f32(bc), stats))
}

/// f64 variant of [`run_f32`].
pub fn run_f64(
    cfg: &GemmConfig,
    shape: &GemmShape,
    a: &[f64],
    b_data: &[f64],
) -> Result<(Vec<f64>, LaunchStats), GpuFault> {
    assert_eq!(shape.dtype, DType::F64);
    let built = build_kernel(cfg, shape);
    let mut mem = GpuMemory::new();
    let ba = mem.alloc_f64(a);
    let bb = mem.alloc_f64(b_data);
    let bc = mem.alloc_f64_zeroed(shape.c_len());
    let stats = Vm::new().launch(
        &built.kernel,
        built.grid,
        built.threads,
        &[
            Arg::Buf(ba),
            Arg::Buf(bb),
            Arg::Buf(bc),
            Arg::I32(shape.m as i32),
            Arg::I32(shape.n as i32),
            Arg::I32(shape.k as i32),
            Arg::I32(built.kchunk as i32),
        ],
        &mut mem,
    )?;
    Ok((mem.read_f64(bc), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality;
    use crate::reference;
    use isaac_device::specs::tesla_p100;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check_f32(cfg: &GemmConfig, shape: &GemmShape) {
        legality::check(cfg, shape, &tesla_p100())
            .unwrap_or_else(|e| panic!("illegal config in test: {e}"));
        let a = rand_vec(shape.a_len(), 1);
        let b = rand_vec(shape.b_len(), 2);
        let (got, _) = run_f32(cfg, shape, &a, &b).expect("VM run");
        let mut want = vec![0.0f32; shape.c_len()];
        reference::gemm_f32(shape, &a, &b, &mut want);
        let tol = 1e-4 * (shape.k as f32).sqrt();
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert!(
                (g - w).abs() <= tol + 1e-5,
                "mismatch at {i}: got {g}, want {w} (cfg {cfg:?}, shape {shape:?})"
            );
        }
    }

    #[test]
    fn exact_tile_fit_nn() {
        let cfg = GemmConfig {
            ml: 32,
            nl: 32,
            ms: 4,
            ns: 4,
            u: 4,
            vec: 1,
            ..Default::default()
        };
        let shape = GemmShape::new(64, 64, 32, "N", "N", DType::F32);
        check_f32(&cfg, &shape);
    }

    #[test]
    fn ragged_edges_are_predicated_nn() {
        let cfg = GemmConfig {
            ml: 32,
            nl: 32,
            ms: 4,
            ns: 4,
            u: 4,
            vec: 1,
            ..Default::default()
        };
        let shape = GemmShape::new(50, 37, 29, "N", "N", DType::F32);
        check_f32(&cfg, &shape);
    }

    #[test]
    fn all_four_layouts() {
        let cfg = GemmConfig {
            ml: 32,
            nl: 32,
            ms: 4,
            ns: 4,
            u: 4,
            vec: 1,
            ..Default::default()
        };
        for (ta, tb) in [("N", "N"), ("N", "T"), ("T", "N"), ("T", "T")] {
            let shape = GemmShape::new(45, 33, 40, ta, tb, DType::F32);
            check_f32(&cfg, &shape);
        }
    }

    #[test]
    fn vectorized_loads_nt() {
        let cfg = GemmConfig {
            ml: 64,
            nl: 64,
            ms: 8,
            ns: 8,
            u: 8,
            vec: 4,
            ..Default::default()
        };
        // NT: both operands vector-load along their contiguous axes.
        let shape = GemmShape::new(64, 64, 64, "N", "T", DType::F32);
        check_f32(&cfg, &shape);
    }

    #[test]
    fn split_k_within_block() {
        let cfg = GemmConfig {
            ml: 16,
            nl: 16,
            ms: 2,
            ns: 2,
            u: 4,
            kl: 4,
            vec: 1,
            ..Default::default()
        };
        let shape = GemmShape::new(20, 20, 100, "N", "N", DType::F32);
        check_f32(&cfg, &shape);
    }

    #[test]
    fn split_k_across_grid_uses_atomics() {
        let cfg = GemmConfig {
            ml: 16,
            nl: 16,
            ms: 2,
            ns: 2,
            u: 4,
            kg: 8,
            vec: 1,
            ..Default::default()
        };
        let shape = GemmShape::new(16, 16, 200, "N", "T", DType::F32);
        check_f32(&cfg, &shape);
    }

    #[test]
    fn combined_splits_kl_kg_ks() {
        let cfg = GemmConfig {
            ml: 16,
            nl: 16,
            ms: 2,
            ns: 2,
            u: 4,
            ks: 2,
            kl: 2,
            kg: 4,
            vec: 1,
            ..Default::default()
        };
        let shape = GemmShape::new(30, 18, 123, "N", "N", DType::F32);
        check_f32(&cfg, &shape);
    }

    #[test]
    fn k_smaller_than_slice_is_fine() {
        let cfg = GemmConfig {
            ml: 32,
            nl: 32,
            ms: 4,
            ns: 4,
            u: 16,
            vec: 1,
            ..Default::default()
        };
        // K = 5 < U = 16: one partial slice.
        let shape = GemmShape::new(32, 32, 5, "N", "N", DType::F32);
        check_f32(&cfg, &shape);
    }

    #[test]
    fn f64_kernels_match_reference() {
        let cfg = GemmConfig {
            ml: 32,
            nl: 32,
            ms: 4,
            ns: 4,
            u: 4,
            vec: 2,
            ..Default::default()
        };
        let shape = GemmShape::new(32, 32, 64, "N", "T", DType::F64);
        let a: Vec<f64> = rand_vec(shape.a_len(), 3)
            .iter()
            .map(|&x| x as f64)
            .collect();
        let b: Vec<f64> = rand_vec(shape.b_len(), 4)
            .iter()
            .map(|&x| x as f64)
            .collect();
        let (got, _) = run_f64(&cfg, &shape, &a, &b).unwrap();
        let mut want = vec![0.0f64; shape.c_len()];
        reference::gemm_f64(&shape, &a, &b, &mut want);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10, "got {g}, want {w}");
        }
    }

    #[test]
    fn f16_kernels_match_quantized_reference() {
        let cfg = GemmConfig {
            ml: 32,
            nl: 32,
            ms: 4,
            ns: 4,
            u: 4,
            vec: 2,
            ..Default::default()
        };
        let shape = GemmShape::new(32, 48, 40, "N", "T", DType::F16);
        let a = rand_vec(shape.a_len(), 5);
        let b = rand_vec(shape.b_len(), 6);
        let (got, _) = run_f32(&cfg, &shape, &a, &b).unwrap();
        let mut want = vec![0.0f32; shape.c_len()];
        reference::gemm_f16(&shape, &a, &b, &mut want);
        // VM accumulates in f32 like the reference but may differ in
        // summation order across splits; tolerance covers it.
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 2e-2, "got {g}, want {w}");
        }
    }

    #[test]
    fn dynamic_stats_look_like_gemm() {
        let cfg = GemmConfig {
            ml: 32,
            nl: 32,
            ms: 4,
            ns: 4,
            u: 8,
            vec: 4,
            ..Default::default()
        };
        let shape = GemmShape::new(64, 64, 64, "N", "T", DType::F32);
        let a = rand_vec(shape.a_len(), 7);
        let b = rand_vec(shape.b_len(), 8);
        let (_, stats) = run_f32(&cfg, &shape, &a, &b).unwrap();
        let per = stats.per_thread();
        // Each thread performs MS*NS*K = 4*4*64 = 1024 FMAs (plus epilogue
        // adds).
        assert!(
            (per.math - 1024.0).abs() < 64.0,
            "math/thread = {}",
            per.math
        );
        // Barriers: 2 per main-loop iteration (K/UK = 8 iterations).
        assert!(per.barriers >= 16.0 / 8.0, "barriers = {}", per.barriers);
        assert!(per.ldg > 0.0 && per.lds > 0.0 && per.sts > 0.0);
    }

    #[test]
    fn generated_ptx_is_valid() {
        let cfg = GemmConfig::default();
        let shape = GemmShape::new(512, 512, 512, "N", "T", DType::F32);
        let built = build_kernel(&cfg, &shape);
        let ptx = isaac_ir::emit_ptx(&built.kernel, "sm_60");
        let module = isaac_ir::ptx::parse_module(&ptx).expect("emitted PTX parses");
        module.validate().expect("emitted PTX validates");
        let counts = module.class_counts();
        // The unrolled inner loop dominates: U*MS*NS = 512 FMAs statically.
        assert!(counts.math >= 512, "math {}", counts.math);
        assert!(counts.ldg >= 2);
        assert!(counts.bar >= 2);
    }
}
